"""Perf-optimization parity: the hot-path rewrites must be invisible.

The PR that introduced memoized canonical encoding, digest-based MACs and
the incremental ack vector (docs/PERFORMANCE.md) claims they are pure
wall-clock optimizations: same seed, byte-identical simulated history,
identical metric exports.  These tests prove it by running the fuzzer's
scenario machinery with each optimization switched back to its reference
implementation and comparing full per-node histories and the complete
metrics export.

Switches under test:

* ``Message.auth_cache_enabled`` -- off = re-encode/re-hash per call;
* ``Message.auth_token_mode`` -- ``"content"`` = MAC over the full
  canonical byte string (the pre-optimization MAC input) instead of its
  SHA-256 digest;
* ``ReliableLayer.incremental_ack_vector`` -- off = rebuild + repr-sort
  the delivered vector from scratch on every drain, and feed the full
  vector (not the delta) to the stability tracker;
* ``ReliableLayer.ack_vector_memo`` -- off = every received ack is
  re-validated and re-merged even when it is the identical memoized
  tuple the sender already sent;
* ``Simulator.serial_queues`` -- off = every CPU-completion event sits
  in the global heap instead of the per-node serial-queue k-way merge;
* ``BottomLayer.batch_verify`` -- off = packed datagrams verify each
  inner message through the per-message reference path instead of one
  ``verify_batch`` call per drain;
* ``OrderingLayer.fast_path_enabled`` -- the optimistic 2-step ordering
  fast path's kill switch: with the ``ordering_fast_path`` config knob
  off (the default), flipping the class switch must change nothing, i.e.
  the fast-path integration is byte-invisible until explicitly enabled.
"""

from contextlib import contextmanager

from repro import StackConfig
from repro.core.message import Message
from repro.layers.bottom import BottomLayer
from repro.layers.ordering import OrderingLayer
from repro.layers.reliable import ReliableLayer
from repro.sim.scheduler import Simulator
from repro.tools.fuzzer import ScenarioFuzzer


@contextmanager
def switches(cache=True, token_mode="digest", incremental=True,
             ack_memo=True, serial=True, batch=True, fast=True):
    saved = (Message.auth_cache_enabled, Message.auth_token_mode,
             ReliableLayer.incremental_ack_vector,
             ReliableLayer.ack_vector_memo,
             Simulator.serial_queues, BottomLayer.batch_verify,
             OrderingLayer.fast_path_enabled)
    Message.auth_cache_enabled = cache
    Message.auth_token_mode = token_mode
    ReliableLayer.incremental_ack_vector = incremental
    ReliableLayer.ack_vector_memo = ack_memo
    Simulator.serial_queues = serial
    BottomLayer.batch_verify = batch
    OrderingLayer.fast_path_enabled = fast
    try:
        yield
    finally:
        (Message.auth_cache_enabled, Message.auth_token_mode,
         ReliableLayer.incremental_ack_vector,
         ReliableLayer.ack_vector_memo,
         Simulator.serial_queues, BottomLayer.batch_verify,
         OrderingLayer.fast_path_enabled) = saved


def run_scenario(seed, config, **fuzz_kw):
    """One fuzzer scenario; returns (history fingerprint, metrics export)."""
    fuzz_kw.setdefault("ops", 8)
    fuzzer = ScenarioFuzzer(seed, config=config, obs=True,
                            **fuzz_kw).execute()
    group = fuzzer.group
    fingerprint = []
    for node in sorted(group.processes, key=repr):
        history = group.processes[node].history
        fingerprint.append((node, tuple(map(repr, history.events))))
    export = tuple(map(repr, group.metrics.rows()))
    events = group.sim.events_processed
    group.stop()
    return tuple(fingerprint), export, events


VARIANTS = {
    "no-cache": dict(cache=False),
    "content-macs": dict(token_mode="content"),
    "full-ack-vector": dict(incremental=False),
    "no-ack-memo": dict(ack_memo=False),
    "heap-schedule": dict(serial=False),
    "per-frame-verify": dict(batch=False),
    "no-fast-path": dict(fast=False),
    "all-reference": dict(cache=False, token_mode="content",
                          incremental=False, ack_memo=False,
                          serial=False, batch=False, fast=False),
}


def assert_parity(seed, config, **fuzz_kw):
    with switches():
        optimized = run_scenario(seed, config, **fuzz_kw)
    for name, kw in VARIANTS.items():
        with switches(**kw):
            reference = run_scenario(seed, config, **fuzz_kw)
        assert reference[0] == optimized[0], \
            "histories diverge under %s (seed %d)" % (name, seed)
        assert reference[1] == optimized[1], \
            "metric exports diverge under %s (seed %d)" % (name, seed)
        assert reference[2] == optimized[2], \
            "event counts diverge under %s (seed %d)" % (name, seed)


def test_parity_sym_crypto():
    # the fig5 sym-crypto shape: the workload the digest-MAC optimization
    # targets; TwoFacedCaster (drawn by some seeds) exercises the
    # re-sign-after-mutation path against the memoized digest
    assert_parity(101, StackConfig.byz(crypto="sym"))


def test_parity_pub_crypto():
    assert_parity(202, StackConfig.byz(crypto="pub"))


def test_parity_packing():
    # packing + sym crypto: the batched pack-flush path plus per-receiver
    # MAC vectors
    assert_parity(303, StackConfig.byz(crypto="sym", packing=True))


def test_parity_gossip_acks():
    # gossip acks route the *full* delivered vector through the stability
    # matrix -- the path where incremental bookkeeping must agree with the
    # reference rebuild exactly.  Traffic-only script: gossip fault
    # schedules converge slowly regardless of these optimizations.
    assert_parity(404, StackConfig.byz(crypto="sym", ack_mode="gossip"),
                  n=6, ops=5, allow=("cast_burst", "run"))


def test_parity_total_order_fast_path_off():
    # total ordering with the ordering_fast_path knob at its default
    # (off): the fast-path integration -- wrapper instances, eager
    # coordinator starts, latency stamps, the dec responder -- must be
    # completely inert, leaving histories/metrics/event counts identical
    # whether the class switch is on or off
    assert_parity(606, StackConfig.byz(crypto="sym", total_order=True))


def test_parity_wire_knobs():
    """The wire-path coalescing knobs live strictly below the ``network``
    seam: the simulator never reads them, so any combination must leave
    the simulated history byte-identical per seed."""
    base = run_scenario(505, StackConfig.byz(crypto="sym"))
    for overrides in (dict(wire_coalesce=False),
                      dict(wire_mtu=1000, wire_coalesce_delay=0.1),
                      dict(wire_coalesce=False, wire_mtu=64000)):
        variant = run_scenario(
            505, StackConfig.byz(crypto="sym").clone(**overrides))
        assert variant == base, \
            "sim history depends on wire knobs %r" % (overrides,)


def test_switches_restore():
    with switches(cache=False, token_mode="content", incremental=False,
                  ack_memo=False, serial=False, batch=False, fast=False):
        assert Message.auth_cache_enabled is False
        assert Message.auth_token_mode == "content"
        assert ReliableLayer.incremental_ack_vector is False
        assert ReliableLayer.ack_vector_memo is False
        assert Simulator.serial_queues is False
        assert BottomLayer.batch_verify is False
        assert OrderingLayer.fast_path_enabled is False
    assert Message.auth_cache_enabled is True
    assert Message.auth_token_mode == "digest"
    assert ReliableLayer.incremental_ack_vector is True
    assert ReliableLayer.ack_vector_memo is True
    assert Simulator.serial_queues is True
    assert BottomLayer.batch_verify is True
    assert OrderingLayer.fast_path_enabled is True
