"""Unit tests for the two Byzantine broadcast protocols."""

import pytest

from repro.broadcast.bracha import BrachaBroadcast
from repro.broadcast.uniform import UniformBroadcast
from repro.consensus.interface import max_f_bracha, max_f_uniform
from repro.sim.scheduler import Simulator


class Bus:
    """Direct bus with per-destination alteration (for two-faced tests)."""

    def __init__(self, n, seed=0):
        self.sim = Simulator(seed=seed)
        self.members = list(range(n))
        self.instances = {}
        self.delivered = {}
        self.crashed = set()
        self.twist = {}  # sender -> callable(dst, payload) -> payload

    def broadcast_from(self, sender):
        def bcast(payload):
            if sender in self.crashed:
                return
            for receiver in self.members:
                if receiver == sender or receiver in self.crashed:
                    continue
                out = payload
                twist = self.twist.get(sender)
                if twist is not None:
                    out = twist(receiver, payload)
                self.sim.schedule(0.001 + self.sim.rng.random() * 0.001,
                                  self._deliver, receiver, sender, out)
        return bcast

    def _deliver(self, receiver, sender, payload):
        if receiver not in self.crashed:
            self.instances[receiver].on_message(sender, payload)

    def build(self, protocol, f, origin):
        for i in self.members:
            self.instances[i] = protocol(
                ("t", 0), self.members, i, f, origin,
                self.broadcast_from(i),
                on_deliver=lambda v, i=i: self.delivered.__setitem__(i, v))
        return self

    def run(self):
        self.sim.run(max_events=500_000)


# ----------------------------------------------------------------------
# the paper's 2-step protocol
# ----------------------------------------------------------------------
def test_uniform_broadcast_delivers_everywhere():
    bus = Bus(12).build(UniformBroadcast, 1, origin=3)
    bus.instances[3].originate("value")
    bus.run()
    assert len(bus.delivered) == 12
    assert set(bus.delivered.values()) == {"value"}


def test_uniform_two_faced_origin_never_splits_delivery():
    # the origin equivocates: half the group sees "A", half sees "B"
    n, f = 12, 1
    bus = Bus(n)
    bus.twist[3] = (lambda dst, payload:
                    ("ub-initial", "A" if dst % 2 == 0 else "B")
                    if payload[0] == "ub-initial" else payload)
    bus.build(UniformBroadcast, f, origin=3)
    bus.instances[3].originate("A")
    bus.run()
    values = set(bus.delivered.values())
    assert len(values) <= 1   # uniformity: never two different deliveries


def test_uniform_broadcast_with_crashed_members():
    n, f = 14, 2
    bus = Bus(n)
    bus.crashed = {12, 13}
    bus.build(UniformBroadcast, f, origin=0)
    bus.instances[0].originate("v")
    bus.run()
    live = set(range(12))
    assert live.issubset(bus.delivered.keys())
    assert set(bus.delivered.values()) == {"v"}


def test_uniform_echo_equivocation_first_kept():
    bus = Bus(12).build(UniformBroadcast, 1, origin=0)
    reports = []
    inst = bus.instances[5]
    inst.on_misbehavior = lambda m, r: reports.append((m, r))
    inst.on_message(7, ("ub-echo", "x"))
    inst.on_message(7, ("ub-echo", "y"))
    assert inst._echoes[7] == "x"
    assert (7, "ub:echo-equivocated") in reports


def test_uniform_initial_forgery_detected():
    bus = Bus(12).build(UniformBroadcast, 1, origin=0)
    reports = []
    inst = bus.instances[5]
    inst.on_misbehavior = lambda m, r: reports.append(r)
    inst.on_message(4, ("ub-initial", "fake"))  # 4 is not the origin
    assert "ub:initial-forged" in reports
    assert inst._initial_value is None


def test_uniform_only_origin_can_originate():
    bus = Bus(12).build(UniformBroadcast, 1, origin=0)
    with pytest.raises(RuntimeError):
        bus.instances[5].originate("v")


def test_uniform_liveness_bound_rejects_too_small_views():
    with pytest.raises(ValueError):
        UniformBroadcast(("t", 0), list(range(6)), 0, 1, 0, lambda p: None)


def test_max_f_uniform_is_the_safe_liveness_bound():
    # the paper says f < n/5, but its own Lemma 3.9 needs n >= 6f + 2
    # (DESIGN.md deviation 1); the helper returns the safe bound
    for n in range(2, 60):
        f = max_f_uniform(n)
        assert n - f >= n / 2.0 + 2 * f + 1
        assert n - (f + 1) < n / 2.0 + 2 * (f + 1) + 1
    assert max_f_uniform(8) == 1
    assert max_f_uniform(14) == 2
    assert max_f_uniform(50) == 8


def test_uniform_f0_still_agrees():
    bus = Bus(4).build(UniformBroadcast, 0, origin=1)
    bus.instances[1].originate("v")
    bus.run()
    assert set(bus.delivered.values()) == {"v"}
    assert len(bus.delivered) == 4


# ----------------------------------------------------------------------
# Bracha's 3-phase protocol
# ----------------------------------------------------------------------
def test_bracha_delivers_everywhere():
    bus = Bus(7).build(BrachaBroadcast, 2, origin=1)
    bus.instances[1].originate("w")
    bus.run()
    assert len(bus.delivered) == 7
    assert set(bus.delivered.values()) == {"w"}


def test_bracha_higher_resilience_than_twostep():
    # n = 7 tolerates f = 2 for Bracha but not for the 2-step protocol
    assert max_f_bracha(7) == 2
    assert max_f_uniform(7) < 2
    BrachaBroadcast(("t", 0), list(range(7)), 0, 2, 0, lambda p: None)
    with pytest.raises(ValueError):
        UniformBroadcast(("t", 0), list(range(7)), 0, 2, 0, lambda p: None)


def test_bracha_two_faced_origin_no_split():
    n, f = 10, 3
    bus = Bus(n)
    bus.twist[0] = (lambda dst, payload:
                    ("br-initial", "A" if dst < 5 else "B")
                    if payload[0] == "br-initial" else payload)
    bus.build(BrachaBroadcast, f, origin=0)
    bus.instances[0].originate("A")
    bus.run()
    assert len(set(bus.delivered.values())) <= 1


def test_bracha_ready_amplification():
    # f+1 readys for a value trigger our own ready even without echoes
    bus = Bus(7).build(BrachaBroadcast, 2, origin=0)
    inst = bus.instances[3]
    inst.on_message(1, ("br-ready", "v"))
    inst.on_message(2, ("br-ready", "v"))
    inst.on_message(4, ("br-ready", "v"))  # f+1 = 3 readys
    assert inst._readied == "v"


def test_bracha_needs_n_gt_3f():
    with pytest.raises(ValueError):
        BrachaBroadcast(("t", 0), list(range(6)), 0, 2, 0, lambda p: None)


def test_bracha_echo_equivocation_detected():
    bus = Bus(7).build(BrachaBroadcast, 2, origin=0)
    reports = []
    inst = bus.instances[3]
    inst.on_misbehavior = lambda m, r: reports.append(r)
    inst.on_message(1, ("br-echo", "x"))
    inst.on_message(1, ("br-echo", "y"))
    assert "bracha:echo-equivocated" in reports
