"""Property tests for the routing directory and the epoch seam.

Three contracts the live-resharding tentpole is built on:

* **ring-diff correctness** -- a key's owner changes between two rings
  iff its hash falls inside one of :func:`ring_diff`'s arcs.  The
  migration streams exactly those arcs' keys, so an arc missed here is
  a key silently stranded on its old shard.
* **epoch monotonicity** -- the directory only ever installs strictly
  newer tables, never retires the live one, and keeps every registered
  table queryable (stale-routed requests must be *recognizable*).
* **fencing totality** -- any ``("op", ...)`` envelope applied to the
  sharded store resolves to exactly one observable verdict: the result
  table or the fence log, never a silent drop.  The re-route-and-retry
  client is only sound if every attempt leaves a trace it can act on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.directory import (HashRing, ShardDirectory, arc_contains,
                                   arcs_contain, hash_key, ring_diff)
from repro.shard.rsm import ShardedKVStore

RING_SHAPES = st.tuples(st.integers(min_value=1, max_value=9),
                        st.integers(min_value=1, max_value=48))

KEYS = st.one_of(
    st.text(max_size=12),
    st.integers(min_value=-2**40, max_value=2**40),
    st.tuples(st.text(max_size=4), st.integers(min_value=0, max_value=99)),
)


# ----------------------------------------------------------------------
# ring-diff correctness
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(old_shape=RING_SHAPES, new_shape=RING_SHAPES,
       keys=st.lists(KEYS, min_size=1, max_size=24))
def test_owner_changes_iff_key_in_a_moved_arc(old_shape, new_shape, keys):
    old = HashRing(*old_shape)
    new = HashRing(*new_shape)
    arcs = ring_diff(old, new)
    moved = tuple((lo, hi) for lo, hi, _src, _dst in arcs)
    for key in keys:
        changed = old.shard_for(key) != new.shard_for(key)
        assert changed == arcs_contain(moved, hash_key(key)), (
            key, old_shape, new_shape)


@settings(max_examples=60, deadline=None)
@given(old_shape=RING_SHAPES, new_shape=RING_SHAPES)
def test_ring_diff_arcs_are_disjoint_and_correctly_owned(old_shape,
                                                         new_shape):
    old = HashRing(*old_shape)
    new = HashRing(*new_shape)
    arcs = ring_diff(old, new)
    for lo, hi, src, dst in arcs:
        assert src != dst
        # the endpoints really belong to the owners the arc names
        assert old.owner_of_point(lo) == src
        assert new.owner_of_point(lo) == dst
        # no other arc contains this arc's low endpoint
        holders = [a for a in arcs if arc_contains(a[0], a[1], lo)]
        assert len(holders) == 1


@settings(max_examples=40, deadline=None)
@given(shape=RING_SHAPES, keys=st.lists(KEYS, min_size=1, max_size=16))
def test_identical_rings_have_empty_diff(shape, keys):
    ring = HashRing(*shape)
    other = HashRing(*shape)
    assert ring_diff(ring, other) == ()
    for key in keys:
        assert ring.shard_for(key) == other.shard_for(key)


# ----------------------------------------------------------------------
# epoch monotonicity
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(steps=st.lists(st.tuples(st.integers(min_value=-2, max_value=5),
                                st.integers(min_value=1, max_value=6)),
                      min_size=1, max_size=8))
def test_directory_epochs_are_strictly_monotonic(steps):
    directory = ShardDirectory(shards=2)
    installed = [0]
    for delta, shards in steps:
        target = directory.epoch + delta
        if delta > 0:
            directory.install_epoch(target, shards)
            installed.append(target)
        else:
            try:
                directory.install_epoch(target, shards)
            except ValueError:
                pass
            else:
                raise AssertionError("non-monotonic epoch %r accepted"
                                     % (target,))
    assert directory.epoch == installed[-1]
    assert directory.epochs() == tuple(sorted(installed))
    # every registered epoch stays routable; the current one is fenced
    # from retirement
    for epoch in directory.epochs():
        directory.route("probe", epoch)
    try:
        directory.retire_epoch(directory.epoch)
    except ValueError:
        pass
    else:
        raise AssertionError("current epoch retired")
    # retiring every older epoch is allowed and idempotent
    for epoch in directory.epochs()[:-1]:
        directory.retire_epoch(epoch)
        directory.retire_epoch(epoch)
    assert directory.epochs() == (directory.epoch,)


# ----------------------------------------------------------------------
# fencing totality
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(machine_epoch=st.integers(min_value=0, max_value=4),
       op_epoch=st.integers(min_value=0, max_value=4),
       key=KEYS, attempt=st.integers(min_value=0, max_value=3))
def test_every_op_is_served_or_fenced_never_dropped(machine_epoch,
                                                    op_epoch, key, attempt):
    machine = ShardedKVStore(epoch=machine_epoch)
    op_id = ("op-id", repr(key), attempt)
    machine.apply("origin",
                  ("op", op_id, attempt, op_epoch, key, ("set", key, 1)))
    served = op_id in machine.op_results
    fenced = (op_id, attempt) in machine.fence_log
    assert served != fenced, (served, fenced)
    if op_epoch == machine_epoch:
        assert served
    else:
        reason, _epoch = machine.fence_log[(op_id, attempt)]
        assert reason == ("stale" if op_epoch < machine_epoch else "early")


@settings(max_examples=40, deadline=None)
@given(key=KEYS, attempts=st.integers(min_value=2, max_value=4))
def test_resubmitted_op_id_applies_exactly_once(key, attempts):
    machine = ShardedKVStore(epoch=1)
    op_id = ("inc", repr(key))
    for attempt in range(attempts):
        machine.apply("origin",
                      ("op", op_id, attempt, 1, key, ("incr", key, 1)))
    stored_key, result = machine.op_results[op_id]
    assert machine.data[key] == 1 and result == 1
