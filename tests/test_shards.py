"""The sharded service plane: routing, isolation, cross-shard atomicity.

Covers the repro.shard subsystem end to end on the simulator:

* directory/ring determinism (the same key always routes to the same
  shard, across processes and ring instances);
* shard isolation -- link faults confined to one shard's member block
  leave the other shards' delivery and views untouched;
* cross-shard transfer atomicity, including a destination-shard view
  change in the middle of a transfer (idempotent same-txid retry);
* fixed-seed multi-shard runs are byte-identical across repeats;
* the composable config sections and the Cluster facade / deprecation
  locks that make all of the above the documented entry point.
"""

import warnings

import pytest

from repro import (
    ChaosConfig,
    Cluster,
    Group,
    ShardConfig,
    StackConfig,
    WireConfig,
)
from repro.obs.metrics import Counter
from repro.shard.directory import HashRing, ShardDirectory
from repro.sim.network import NetworkConfig


def make_cluster(shards, nodes_per_shard, seed=0, total_order=False,
                 crypto="none", obs=False, **kw):
    config = StackConfig.byz(crypto=crypto, total_order=total_order, obs=obs)
    return Cluster.create(shards=shards, nodes_per_shard=nodes_per_shard,
                          config=config, seed=seed, **kw)


def keys_on_shard(cluster, shard, count=1, tag="k"):
    """Deterministically find ``count`` keys the directory routes to
    ``shard``."""
    found = []
    for i in range(10000):
        key = "%s%d" % (tag, i)
        if cluster.route(key) == shard:
            found.append(key)
            if len(found) == count:
                return found
    raise AssertionError("no key routes to shard %r" % (shard,))


# ----------------------------------------------------------------------
# directory / ring
# ----------------------------------------------------------------------
def test_hash_ring_is_deterministic_across_instances():
    a = HashRing(8)
    b = HashRing(8)
    keys = ["user:%d" % i for i in range(256)]
    assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]


def test_hash_ring_spreads_keys_over_every_shard():
    ring = HashRing(8)
    spread = ring.spread("user:%d" % i for i in range(2048))
    assert set(spread) == set(range(8))
    assert min(spread.values()) > 0


def test_directory_epochs_are_versioned():
    directory = ShardDirectory(4)
    key = "account:42"
    owner = directory.route(key)
    directory.install_epoch(1, 8)
    # the old epoch stays queryable; the new one is the default
    assert directory.route(key, epoch=0) == owner
    assert directory.route(key) == HashRing(8).shard_for(key)
    with pytest.raises(ValueError):
        directory.install_epoch(1, 2)
    with pytest.raises(KeyError):
        directory.route(key, epoch=5)


def test_cluster_routing_matches_directory():
    cluster = make_cluster(4, 3)
    for i in range(64):
        key = "k%d" % i
        shard = cluster.route(key)
        assert cluster.manager.group_for(key) is cluster.shard_group(shard)
    cluster.stop()


# ----------------------------------------------------------------------
# config sections
# ----------------------------------------------------------------------
def test_config_sections_compose():
    config = StackConfig.byz(wire=WireConfig(mtu=900, packing=True),
                             shard=ShardConfig(shards=16, nodes_per_shard=7),
                             chaos=ChaosConfig(plan=[("drop", 1, 2, 1.0)]))
    assert config.mtu == 900 and config.packing is True
    assert config.shard.shards == 16
    assert config.chaos.plan == [("drop", 1, 2, 1.0)]


def test_flat_kwargs_still_route_and_win_over_sections():
    config = StackConfig.byz(mtu=700, wire=WireConfig(mtu=900))
    assert config.mtu == 700
    assert config.wire.mtu == 700


def test_flat_setters_are_copy_on_write():
    base = StackConfig.byz(wire=WireConfig(mtu=900))
    fork = base.clone()
    fork.mtu = 500
    assert base.mtu == 900 and fork.mtu == 500
    assert base.wire is not fork.wire


def test_clone_flat_override_beats_passed_section():
    base = StackConfig.byz()
    cloned = base.clone(wire=WireConfig(mtu=900), mtu=650)
    assert cloned.mtu == 650


# ----------------------------------------------------------------------
# facade / deprecation
# ----------------------------------------------------------------------
def test_single_shard_cluster_exposes_classic_group():
    cluster = make_cluster(1, 5)
    group = cluster.group
    assert sorted(group.processes) == [0, 1, 2, 3, 4]
    got = []
    group.endpoints[1].on_cast = lambda ev: got.append(ev.payload)
    group.endpoints[0].cast(("ping",))
    cluster.run_until(lambda: got, timeout=3.0)
    assert got == [("ping",)]
    cluster.stop()


def test_multi_shard_cluster_group_property_raises():
    cluster = make_cluster(2, 3)
    with pytest.raises(ValueError):
        cluster.group
    cluster.stop()


def test_direct_group_construction_is_deprecated():
    cluster = make_cluster(1, 3, seed=3)
    with pytest.warns(DeprecationWarning):
        Group(cluster.sim, cluster.manager.network, {}, {}, cluster.config)
    cluster.stop()


def test_bootstrap_and_on_runtime_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        group = Group.bootstrap(4, config=StackConfig.byz(), seed=1)
        group.run(0.05)
        group.stop()


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def _plane_fingerprint(seed):
    cluster = make_cluster(3, 4, seed=seed)
    for shard in range(3):
        group = cluster.shard_group(shard)
        for node in sorted(group.processes):
            group.endpoints[node].cast((shard, node))
    cluster.run(0.4)
    fingerprint = []
    for shard in range(3):
        group = cluster.shard_group(shard)
        for node in sorted(group.processes):
            history = group.processes[node].history
            fingerprint.append((node, tuple(map(repr, history.events))))
    events = cluster.sim.events_processed
    cluster.stop()
    return tuple(fingerprint), events


def test_multi_shard_same_seed_byte_identical():
    first, events_a = _plane_fingerprint(seed=42)
    second, events_b = _plane_fingerprint(seed=42)
    assert first == second
    assert events_a == events_b


# ----------------------------------------------------------------------
# isolation
# ----------------------------------------------------------------------
def test_link_faults_in_one_shard_leave_the_other_untouched():
    # jitterless network so the healthy shard's schedule has no noise to
    # absorb; the fault engine draws from its own RNG either way
    cluster = make_cluster(
        2, 4, seed=7,
        net_config=NetworkConfig(jitter=0.0, drop_prob=0.0))
    sick = cluster.shard_group(1)
    members = sorted(sick.processes)
    specs = [("drop", a, b, 1.0)
             for a in members for b in members if a != b]
    cluster.manager.install_link_faults(specs)

    healthy = cluster.shard_group(0)
    got = {node: [] for node in healthy.processes}
    for node, endpoint in healthy.endpoints.items():
        endpoint.on_cast = (lambda node: lambda ev:
                            got[node].append(ev.payload))(node)
    healthy.endpoints[0].cast(("alive",))
    cluster.run_until(lambda: all(got.values()), timeout=3.0)
    assert all(payloads == [("alive",)] for payloads in got.values())

    # the healthy shard keeps its full view while the sick shard's
    # members, fully cut off from each other, cannot hold theirs
    cluster.run(2.0)
    assert all(p.view.n == 4 for p in healthy.processes.values())
    assert any(p.view.n < 4 for p in sick.processes.values())
    assert cluster.manager.network.chaos.dropped > 0
    cluster.stop()


def test_stop_shard_releases_runtime_and_spares_the_rest():
    cluster = make_cluster(2, 3, seed=11)
    cluster.stop_shard(0)
    survivor = cluster.shard_group(1)
    got = []
    first = min(survivor.processes)
    survivor.endpoints[first].on_cast = lambda ev: got.append(ev.payload)
    survivor.endpoints[first].cast(("still-here",))
    cluster.run_until(lambda: got, timeout=3.0)
    assert got == [("still-here",)]
    # the stopped shard's ports are detached, not just crashed: its node
    # ids are free for a fresh attach on the same shared network
    for node in cluster.shard_group(0).processes:
        assert node not in cluster.manager.network._ports
    cluster.stop()


# ----------------------------------------------------------------------
# cross-shard transfers
# ----------------------------------------------------------------------
def test_cross_shard_transfer_commits_atomically():
    cluster = make_cluster(2, 4, seed=5, total_order=True)
    rsm = cluster.sharded_rsm()
    (src_key,) = keys_on_shard(cluster, 0)
    (dst_key,) = keys_on_shard(cluster, 1)
    rsm.submit(src_key, ("set", src_key, 100))
    rsm.submit(dst_key, ("set", dst_key, 10))
    cluster.run(1.0)

    assert rsm.transfer(src_key, dst_key, 30) == "committed"
    cluster.run(1.0)
    assert rsm.get(src_key) == 70
    assert rsm.get(dst_key) == 40
    # replicas of each shard converge on one digest, transfer tables
    # included
    for shard in (0, 1):
        cluster.run_until(
            lambda shard=shard: len(set(
                rsm.shard_digests(shard).values())) == 1,
            timeout=4.0)
        assert len(set(rsm.shard_digests(shard).values())) == 1
    cluster.stop()


def test_insufficient_funds_aborts_with_no_net_effect():
    cluster = make_cluster(2, 4, seed=6, total_order=True)
    rsm = cluster.sharded_rsm()
    (src_key,) = keys_on_shard(cluster, 0)
    (dst_key,) = keys_on_shard(cluster, 1)
    rsm.submit(src_key, ("set", src_key, 20))
    cluster.run(1.0)
    assert rsm.transfer(src_key, dst_key, 500) == "aborted"
    cluster.run(0.5)
    assert rsm.get(src_key) == 20
    assert rsm.get(dst_key) is None
    cluster.stop()


def test_transfer_survives_mid_transfer_view_change():
    cluster = make_cluster(2, 4, seed=9, total_order=True)
    rsm = cluster.sharded_rsm()
    (src_key,) = keys_on_shard(cluster, 0)
    (dst_key,) = keys_on_shard(cluster, 1)
    rsm.submit(src_key, ("set", src_key, 100))
    cluster.run(1.0)

    # phase 1 lands on the source shard, then the destination shard's
    # lowest member -- the coordinator's next submitter -- crashes, so
    # finishing the SAME transfer must ride out a view change and the
    # idempotent same-txid resubmission path
    coordinator = rsm.coordinator
    txid = ("tx", "viewchange")
    assert coordinator._phase(
        0, ("xfer_prepare", txid, src_key, 40),
        lambda m: txid in m.pending or txid in m.finished)
    dst_group = cluster.shard_group(1)
    victim = min(dst_group.processes)
    dst_group.crash(victim)

    outcome = rsm.transfer(src_key, dst_key, 40, txid=txid)
    assert outcome == "committed"
    cluster.run_until(
        lambda: all(p.view.n == 3 for p in dst_group.processes.values()
                    if not p.stopped),
        timeout=6.0)
    cluster.run(1.0)
    assert rsm.get(src_key) == 60
    assert rsm.get(dst_key) == 40
    # the crashed member is excluded; the survivors agree, tables and all
    for shard in (0, 1):
        cluster.run_until(
            lambda shard=shard: len(set(
                rsm.shard_digests(shard).values())) == 1,
            timeout=4.0)
        digests = rsm.shard_digests(shard)
        assert len(set(digests.values())) == 1, digests
    assert victim not in rsm.shard_digests(1)
    cluster.stop()


# ----------------------------------------------------------------------
# shared keys + per-shard metric namespaces
# ----------------------------------------------------------------------
def test_shared_key_manager_derives_each_pair_once():
    cluster = make_cluster(3, 4, seed=2, crypto="sym")
    cluster.run(1.0)
    stats = cluster.manager.key_stats()
    # 3 shards x C(4,2) unordered pairs, each derived exactly once
    assert stats["pairs_cached"] == 3 * 6
    assert stats["pair_derivations"] == 3 * 6
    # MAC reuse now happens one level up: the half-initialized HMAC state
    # per pair is shared across every co-hosted shard authenticator, so
    # pair_key itself is consulted exactly once per pair (by mac_base)
    assert stats["mac_bases_cached"] == 3 * 6
    cluster.stop()


def test_per_shard_metric_namespaces_partition_the_registry():
    cluster = make_cluster(2, 3, seed=4, obs=True)
    for shard in range(2):
        group = cluster.shard_group(shard)
        first = min(group.processes)
        group.endpoints[first].cast(("m", shard))
    cluster.run(0.5)
    registry = cluster.metrics
    manager = cluster.manager
    names = sorted({key[2] for key, inst in registry._instruments.items()
                    if isinstance(inst, Counter)
                    and key[0] in manager.shard_of})
    assert names, "no per-node counters recorded"
    everyone = list(manager.shard_of)
    for name in names:
        per_shard = [manager.shard_total(shard, name) for shard in range(2)]
        assert sum(per_shard) == registry.total_nodes(everyone, name)
    # at least one counter is active in BOTH shards (traffic flowed)
    assert any(manager.shard_total(0, name) > 0
               and manager.shard_total(1, name) > 0 for name in names)
    cluster.stop()
