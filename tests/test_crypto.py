"""Unit tests for key management and the three authenticators."""

import pytest

from repro.crypto.auth import (NullAuth, PairwiseSymmetricAuth, PublicKeyAuth,
                               make_authenticator, stable_bytes)
from repro.crypto.cost import FREE, CryptoCostModel
from repro.crypto.keys import KeyAccessError, KeyManager


@pytest.fixture
def keys():
    return KeyManager()


def test_pair_key_is_symmetric(keys):
    assert keys.pair_key(1, 2) == keys.pair_key(2, 1)


def test_pair_keys_differ_per_pair(keys):
    assert keys.pair_key(1, 2) != keys.pair_key(1, 3)


def test_private_key_only_released_to_owner(keys):
    keys.private_key_of(7, requester=7)
    with pytest.raises(KeyAccessError):
        keys.private_key_of(7, requester=8)


def test_null_auth_costs_nothing_and_accepts_everything():
    auth = NullAuth(None, FREE)
    sig, cost, size = auth.sign(0, [1, 2], ("data",))
    assert (sig, cost, size) == (None, 0.0, 0)
    ok, vcost = auth.verify(1, 0, ("data",), sig)
    assert ok and vcost == 0.0


def test_symmetric_auth_round_trip(keys):
    auth = PairwiseSymmetricAuth(keys, CryptoCostModel())
    sig, cost, size = auth.sign(0, [1, 2, 3], ("hello",))
    assert set(sig) == {1, 2, 3}
    assert cost == 3 * auth.costs.sym_sign
    for receiver in (1, 2, 3):
        ok, _vcost = auth.verify(receiver, 0, ("hello",), sig)
        assert ok


def test_symmetric_auth_rejects_tampered_content(keys):
    auth = PairwiseSymmetricAuth(keys, CryptoCostModel())
    sig, _cost, _size = auth.sign(0, [1], ("hello",))
    ok, _ = auth.verify(1, 0, ("tampered",), sig)
    assert not ok


def test_symmetric_auth_rejects_wrong_claimed_sender(keys):
    auth = PairwiseSymmetricAuth(keys, CryptoCostModel())
    sig, _cost, _size = auth.sign(0, [1], ("hello",))
    ok, _ = auth.verify(1, 2, ("hello",), sig)
    assert not ok


def test_symmetric_auth_receiver_not_in_vector(keys):
    auth = PairwiseSymmetricAuth(keys, CryptoCostModel())
    sig, _cost, _size = auth.sign(0, [1], ("hello",))
    ok, _ = auth.verify(9, 0, ("hello",), sig)
    assert not ok


def test_symmetric_auth_does_not_sign_for_self(keys):
    auth = PairwiseSymmetricAuth(keys, CryptoCostModel())
    sig, _cost, _size = auth.sign(0, [0, 1], ("x",))
    assert 0 not in sig


def test_symmetric_vector_travels_whole_so_third_party_can_retransmit(keys):
    # receiver 2 can verify its own entry from a copy relayed by node 1
    auth = PairwiseSymmetricAuth(keys, CryptoCostModel())
    sig, _cost, _size = auth.sign(0, [1, 2], ("hello",))
    ok, _ = auth.verify(2, 0, ("hello",), sig)
    assert ok


def test_public_key_auth_round_trip(keys):
    auth = PublicKeyAuth(keys, CryptoCostModel())
    sig, cost, size = auth.sign(0, [1, 2], ("hello",))
    assert cost == auth.costs.pub_sign
    assert size == PublicKeyAuth.SIG_BYTES
    ok, vcost = auth.verify(5, 0, ("hello",), sig)
    assert ok and vcost == auth.costs.pub_verify


def test_public_key_auth_rejects_tampering(keys):
    auth = PublicKeyAuth(keys, CryptoCostModel())
    sig, _cost, _size = auth.sign(0, [1], ("hello",))
    assert not auth.verify(1, 0, ("bye",), sig)[0]
    assert not auth.verify(1, 3, ("hello",), sig)[0]


def test_public_key_signing_requires_own_identity(keys):
    auth = PublicKeyAuth(keys, CryptoCostModel())
    with pytest.raises(KeyAccessError):
        # the signing path goes through the owner check: no impersonation
        key = keys.private_key_of(3, requester=4)


def test_make_authenticator_factory(keys):
    costs = CryptoCostModel()
    assert isinstance(make_authenticator("none", keys, costs), NullAuth)
    assert isinstance(make_authenticator("sym", keys, costs),
                      PairwiseSymmetricAuth)
    assert isinstance(make_authenticator("pub", keys, costs), PublicKeyAuth)
    with pytest.raises(ValueError):
        make_authenticator("rot13", keys, costs)


def test_stable_bytes_is_deterministic():
    assert stable_bytes(("a", 1)) == stable_bytes(("a", 1))
    assert stable_bytes(("a", 1)) != stable_bytes(("a", 2))
    assert stable_bytes(b"raw") == b"raw"


def test_free_cost_model_is_all_zero():
    assert FREE.sym_sign == 0.0
    assert FREE.pub_sign == 0.0
    assert FREE.hash_digest == 0.0


def test_cost_model_describe():
    assert "sym_sign" in CryptoCostModel().describe()
