"""Unit tests for the fuzzy mute and fuzzy verbose failure detectors."""

from repro.detectors.fuzzy import FuzzyLevels
from repro.detectors.mute import FuzzyMuteDetector
from repro.detectors.verbose import FuzzyVerboseDetector
from repro.sim.scheduler import Simulator


def make_levels(sim, decay_interval=0.05, decay_amount=1.0):
    return FuzzyLevels(sim, "mute", decay_interval, decay_amount)


# ----------------------------------------------------------------------
# FuzzyLevels
# ----------------------------------------------------------------------
def test_levels_accumulate():
    sim = Simulator()
    levels = make_levels(sim)
    levels.raise_level("a", 1.0)
    levels.raise_level("a", 2.0)
    assert levels.level("a") == 3.0
    assert levels.level("unknown") == 0.0


def test_levels_age_down_over_time():
    sim = Simulator()
    levels = make_levels(sim, decay_interval=0.1, decay_amount=1.0)
    levels.raise_level("a", 3.0)
    sim.run(until=0.25)
    assert levels.level("a") == 1.0
    sim.run(until=0.45)
    assert levels.level("a") == 0.0


def test_levels_never_go_negative():
    sim = Simulator()
    levels = make_levels(sim, decay_interval=0.1)
    levels.raise_level("a", 0.5)
    sim.run(until=0.5)
    assert levels.level("a") == 0.0
    assert "a" not in levels.snapshot()


def test_members_above_threshold():
    sim = Simulator()
    levels = make_levels(sim)
    levels.raise_level("a", 3.0)
    levels.raise_level("b", 1.0)
    assert levels.members_above(2.5) == {"a"}


def test_subscribers_notified_on_changes():
    sim = Simulator()
    levels = make_levels(sim)
    seen = []
    levels.subscribe(lambda name, member, level: seen.append((member, level)))
    levels.raise_level("a", 2.0)
    levels.reset("a")
    assert seen == [("a", 2.0), ("a", 0.0)]


def test_forget_all_clears_and_notifies():
    sim = Simulator()
    levels = make_levels(sim)
    levels.raise_level("a", 2.0)
    levels.raise_level("b", 1.0)
    seen = []
    levels.subscribe(lambda name, member, level: seen.append((member, level)))
    levels.forget_all()
    assert levels.snapshot() == {}
    assert ("a", 0.0) in seen and ("b", 0.0) in seen


def test_raise_zero_is_noop():
    sim = Simulator()
    levels = make_levels(sim)
    levels.raise_level("a", 0.0)
    assert levels.snapshot() == {}


# ----------------------------------------------------------------------
# FuzzyMuteDetector
# ----------------------------------------------------------------------
def test_unfulfilled_expectation_raises_level():
    sim = Simulator()
    levels = make_levels(sim, decay_interval=10.0)
    mute = FuzzyMuteDetector(sim, levels, default_timeout=0.1)
    mute.expect("a", "ack")
    sim.run(until=0.2)
    assert levels.level("a") == 1.0
    assert mute.timeouts_fired == 1


def test_fulfilled_expectation_is_silent():
    sim = Simulator()
    levels = make_levels(sim, decay_interval=10.0)
    mute = FuzzyMuteDetector(sim, levels, default_timeout=0.1)
    mute.expect("a", "ack")
    assert mute.fulfil("a", "ack")
    sim.run(until=0.5)
    assert levels.level("a") == 0.0


def test_fulfil_without_expectation_returns_false():
    sim = Simulator()
    mute = FuzzyMuteDetector(sim, make_levels(sim))
    assert not mute.fulfil("a", "ack")


def test_fulfil_discharges_oldest_first():
    sim = Simulator()
    levels = make_levels(sim, decay_interval=10.0)
    mute = FuzzyMuteDetector(sim, levels, default_timeout=0.1)
    mute.expect("a", "ack", timeout=0.1)
    mute.expect("a", "ack", timeout=0.5)
    mute.fulfil("a", "ack")  # cancels the 0.1s one
    sim.run(until=0.2)
    assert levels.level("a") == 0.0
    sim.run(until=0.6)
    assert levels.level("a") == 1.0


def test_expectation_weight():
    sim = Simulator()
    levels = make_levels(sim, decay_interval=10.0)
    mute = FuzzyMuteDetector(sim, levels, default_timeout=0.1)
    mute.expect("a", "view", weight=2.5)
    sim.run(until=0.2)
    assert levels.level("a") == 2.5


def test_cancel_member_drops_all_expectations():
    sim = Simulator()
    levels = make_levels(sim, decay_interval=10.0)
    mute = FuzzyMuteDetector(sim, levels, default_timeout=0.1)
    mute.expect("a", "ack")
    mute.expect("a", "view")
    mute.expect("b", "ack")
    mute.cancel_member("a")
    assert mute.pending_count("a") == 0
    assert mute.pending_count("b") == 1
    sim.run(until=0.2)
    assert levels.level("a") == 0.0
    assert levels.level("b") == 1.0


def test_expectations_keyed_by_tag():
    sim = Simulator()
    levels = make_levels(sim, decay_interval=10.0)
    mute = FuzzyMuteDetector(sim, levels, default_timeout=0.1)
    mute.expect("a", "ack")
    mute.fulfil("a", "view")  # different tag: does not discharge
    sim.run(until=0.2)
    assert levels.level("a") == 1.0


# ----------------------------------------------------------------------
# FuzzyVerboseDetector
# ----------------------------------------------------------------------
def test_rate_bound_violation_raises_level():
    sim = Simulator()
    levels = FuzzyLevels(sim, "verbose", 10.0, 1.0)
    verbose = FuzzyVerboseDetector(sim, levels)
    verbose.set_rate_bound("slander", max_count=3, window=1.0)
    flagged = [verbose.observe("a", "slander") for _ in range(5)]
    assert flagged == [False, False, False, True, True]
    assert levels.level("a") == 2.0


def test_rate_window_resets():
    sim = Simulator()
    levels = FuzzyLevels(sim, "verbose", 10.0, 1.0)
    verbose = FuzzyVerboseDetector(sim, levels)
    verbose.set_rate_bound("x", max_count=2, window=1.0)
    verbose.observe("a", "x")
    verbose.observe("a", "x")
    # the aging timer reschedules forever; advance bounded virtual time
    sim.run(until=2.5)
    assert not verbose.observe("a", "x")  # fresh window


def test_unbounded_tags_are_ignored():
    sim = Simulator()
    verbose = FuzzyVerboseDetector(sim, FuzzyLevels(sim, "verbose", 10.0, 1.0))
    assert not verbose.observe("a", "anything")


def test_illegal_message_jumps_level():
    sim = Simulator()
    levels = FuzzyLevels(sim, "verbose", 10.0, 1.0)
    verbose = FuzzyVerboseDetector(sim, levels)
    verbose.illegal("a", "forged-ack")
    assert levels.level("a") == FuzzyVerboseDetector.ILLEGAL_WEIGHT
    assert verbose.violations == 1


def test_illegal_custom_weight():
    sim = Simulator()
    levels = FuzzyLevels(sim, "verbose", 10.0, 1.0)
    verbose = FuzzyVerboseDetector(sim, levels)
    verbose.illegal("a", "x", weight=1.5)
    assert levels.level("a") == 1.5


def test_rate_bounds_are_per_member():
    sim = Simulator()
    levels = FuzzyLevels(sim, "verbose", 10.0, 1.0)
    verbose = FuzzyVerboseDetector(sim, levels)
    verbose.set_rate_bound("x", max_count=1, window=1.0)
    verbose.observe("a", "x")
    assert not verbose.observe("b", "x")
    assert verbose.observe("a", "x")


def test_verbose_forget_clears_member_counters():
    sim = Simulator()
    levels = FuzzyLevels(sim, "verbose", 10.0, 1.0)
    verbose = FuzzyVerboseDetector(sim, levels)
    verbose.set_rate_bound("x", max_count=1, window=100.0)
    verbose.observe("a", "x")
    assert verbose.observe("a", "x")     # second in window: over the bound
    verbose.forget("a")
    assert not verbose.observe("a", "x")  # counters reset for "a"
