"""Tests for the parsimonious (agreement/execution split) service."""

from repro import Group, StackConfig
from repro.apps.parsimonious import ParsimoniousService


def build(n, seed, lie_at=None, lie=None, f_override=None):
    config = StackConfig.byz(total_order=True, f_override=f_override)
    group = Group.bootstrap(n, config=config, seed=seed)
    results = {node: {} for node in group.endpoints}
    services = {}
    for node, endpoint in group.endpoints.items():
        services[node] = ParsimoniousService(
            endpoint,
            execute=lambda command: ("ok", command),
            on_result=lambda rid, res, node=node: results[node].__setitem__(rid, res),
            lie=(lie if node == lie_at else None))
    return group, services, results


def test_request_certified_everywhere_with_committee_work_only():
    group, services, results = build(8, seed=1)
    rid = services[0].submit(("cmd", 1))
    group.run(1.0)
    for node in group.endpoints:
        assert results[node].get(rid) == ("ok", ("cmd", 1))
    # only f+1 members executed (f=1 at n=8 -> 2 executions)
    total_execs = sum(s.executions for s in services.values())
    assert total_execs == group.processes[0].f + 1


def test_execution_load_spreads_across_committees():
    group, services, results = build(8, seed=2)
    for k in range(16):
        services[k % 8].submit(("cmd", k))
    group.run(2.0)
    executed_members = {node for node, s in services.items()
                        if s.executions > 0}
    assert len(executed_members) >= 6  # rotation actually rotates


def test_lying_executor_is_outvoted_after_escalation():
    group, services, results = build(
        8, seed=3, lie_at=1, lie=lambda command, result: ("evil", command))
    group.byzantine_nodes = {1}
    # find a request whose committee includes the liar: with rotation,
    # request index i has committee members[i % n .. +f]; submit several
    rids = [services[0].submit(("cmd", k)) for k in range(8)]
    group.run(3.0)
    for node in group.endpoints:
        if node == 1:
            continue
        for rid in rids:
            certified = results[node].get(rid)
            assert certified is not None, (node, rid)
            assert certified[0] == "ok", (node, rid, certified)
    # the liar caused at least one escalation (extra executions)
    total_execs = sum(s.executions for n, s in services.items())
    assert total_execs > len(rids) * (group.processes[0].f + 1)


def test_all_replicas_certify_identical_results():
    group, services, results = build(8, seed=4)
    rids = [services[k].submit(("op", k)) for k in range(4)]
    group.run(2.0)
    for rid in rids:
        certified = {repr(results[node].get(rid))
                     for node in group.endpoints}
        assert len(certified) == 1


def test_requires_total_order():
    import pytest
    group = Group.bootstrap(4, config=StackConfig.byz(), seed=5)
    with pytest.raises(ValueError):
        ParsimoniousService(group.endpoints[0], execute=lambda c: c)


def test_uninvited_reply_flagged_verbose():
    group, services, results = build(8, seed=6)
    rid = services[0].submit(("cmd", 1))
    # a node far from the committee forges a reply *before* the real
    # committee can certify, so the check actually sees it
    outsider = None
    committee = services[0].committee(0)
    for node in group.endpoints:
        if node not in committee:
            outsider = node
            break
    group.endpoints[outsider].cast(("prep", (rid, ("evil", 1))))
    group.run(1.0)
    flagged = any(p.verbose_levels.level(outsider) > 0
                  or p.verbose_detector.violations > 0
                  for n, p in group.processes.items() if n != outsider)
    assert flagged


def test_parsimonious_survives_view_change():
    group, services, results = build(8, seed=7)
    rid_pre = services[0].submit(("cmd", "pre"))
    group.run(0.5)
    group.crash(7)
    group.run_until(lambda: all(p.view.n == 7
                                for p in group.processes.values()
                                if not p.stopped), timeout=6.0)
    rid_post = services[0].submit(("cmd", "post"))
    group.run(1.5)
    for node in range(7):
        assert results[node].get(rid_pre) == ("ok", ("cmd", "pre"))
        assert results[node].get(rid_post) == ("ok", ("cmd", "post"))
