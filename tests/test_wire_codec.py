"""Property tests for the real-network wire codec (repro/runtime/wire.py).

Three claims, per the codec's contract:

1. round-trip -- every value in the protocol stack's wire universe
   (None/bool/int/float/str/bytes, nested containers, ViewId, Message)
   encodes and decodes back to an equal value, and whole frames carry
   frame type + source + payload faithfully;
2. totality -- decoding arbitrary bytes (truncations, single bit flips,
   random garbage) either succeeds or raises WireError; it NEVER raises
   anything else, loops, or allocates unboundedly;
3. attribution -- a decode failure whose frame header survived carries
   the claimed source on ``err.src``, and the bottom layer feeds such
   rejects into the existing ``corruption_suspect_threshold`` suspicion
   path exactly like bad-signature drops.

Everything here is socket-free: the codec is pure bytes in/bytes out.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Group, StackConfig
from repro.core.message import Message
from repro.core.view import ViewId
from repro.runtime.wire import (
    FRAME_BATCH,
    FRAME_DATAGRAM,
    FRAME_GOSSIP,
    MAGIC,
    WIRE_VERSION,
    WireError,
    decode_datagram,
    decode_frame,
    decode_value,
    encode_batch,
    encode_frame,
    encode_message_prefix,
    encode_message_tail_into,
    encode_value,
    frame_prefix,
)

# ----------------------------------------------------------------------
# strategies over the codec's value universe
# ----------------------------------------------------------------------
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),                      # includes > 64-bit (bigint tag)
    st.floats(allow_nan=False),        # NaN breaks == round-trip checks
    st.text(max_size=40),
    st.binary(max_size=40),
)

hashables = st.recursive(
    scalars,
    lambda inner: st.tuples(inner, inner)
    | st.frozensets(inner, max_size=4),
    max_leaves=8,
)

values = st.recursive(
    scalars | st.builds(ViewId, st.integers(), st.integers()),
    lambda inner: st.one_of(
        st.lists(inner, max_size=5).map(tuple),
        st.lists(inner, max_size=5),
        st.dictionaries(hashables, inner, max_size=4),
        st.sets(hashables, max_size=4),
        st.frozensets(hashables, max_size=4),
    ),
    max_leaves=16,
)

messages = st.builds(
    lambda kind, origin, vid, payload, size: Message(
        kind, origin, vid, payload, payload_size=size),
    st.text(min_size=1, max_size=12),
    st.integers(0, 64),
    st.builds(ViewId, st.integers(0, 1 << 40), st.integers(0, 64)),
    values,
    st.integers(0, 65000),
)


# ----------------------------------------------------------------------
# 1. round-trip
# ----------------------------------------------------------------------
@given(values)
def test_value_round_trip(value):
    assert decode_value(encode_value(value)) == value


@given(values)
def test_value_round_trip_preserves_type(value):
    decoded = decode_value(encode_value(value))
    assert type(decoded) is type(value)


@given(messages)
def test_message_round_trip(msg):
    decoded = decode_value(encode_value(msg))
    assert type(decoded) is Message
    assert decoded.wire_fields() == msg.wire_fields()


@given(st.sampled_from([FRAME_DATAGRAM, FRAME_GOSSIP]),
       st.integers(0, 1 << 20), values)
def test_frame_round_trip(frame_type, src, payload):
    frame = encode_frame(frame_type, src, payload)
    assert decode_frame(frame) == (frame_type, src, payload)


def test_frame_layout_is_versioned():
    frame = encode_frame(FRAME_DATAGRAM, 3, ("hello",))
    assert frame[:2] == MAGIC
    assert frame[2] == WIRE_VERSION
    assert frame[3] == FRAME_DATAGRAM


# ----------------------------------------------------------------------
# 2. totality: WireError or success, never anything else
# ----------------------------------------------------------------------
def _decodes_or_wire_error(data):
    try:
        result = decode_frame(data)
    except WireError:
        return None
    assert isinstance(result, tuple) and len(result) == 3
    return result


@given(values, st.data())
def test_truncated_frames_reject(payload, data):
    frame = encode_frame(FRAME_DATAGRAM, 1, payload)
    cut = data.draw(st.integers(0, len(frame) - 1))
    with pytest.raises(WireError):
        decode_frame(frame[:cut])


@given(values, st.data())
def test_bit_flipped_frames_never_crash(payload, data):
    frame = bytearray(encode_frame(FRAME_GOSSIP, 2, payload))
    bit = data.draw(st.integers(0, len(frame) * 8 - 1))
    frame[bit // 8] ^= 1 << (bit % 8)
    # a flip may still decode (e.g. inside a string; the HMAC catches it
    # later) -- the codec's promise is only "value or WireError"
    _decodes_or_wire_error(bytes(frame))


@given(st.binary(max_size=200))
def test_random_garbage_never_crashes(data):
    _decodes_or_wire_error(data)


@given(st.binary(min_size=4, max_size=200))
def test_garbage_with_valid_header_never_crashes(data):
    _decodes_or_wire_error(MAGIC + bytes([WIRE_VERSION, FRAME_DATAGRAM])
                           + data)


def test_depth_cap_on_encode():
    nested = ()
    for _ in range(40):
        nested = (nested,)
    with pytest.raises(WireError):
        encode_value(nested)


def test_depth_cap_on_decode():
    # hand-built: 40 nested single-element tuples around a None -- deeper
    # than any legal encoder output, must be rejected, not recursed into
    blob = b"\x08\x00\x00\x00\x01" * 40 + b"\x00"
    with pytest.raises(WireError):
        decode_value(blob)


def test_huge_count_is_bounded():
    # a tuple claiming 2**31 elements in a tiny buffer: the count check
    # must reject it instead of attempting the allocation
    blob = b"\x08" + (0x80000000).to_bytes(4, "big")
    with pytest.raises(WireError):
        decode_value(blob)


def test_unencodable_type_rejected():
    with pytest.raises(WireError):
        encode_value(object())


def test_trailing_garbage_rejected():
    frame = encode_frame(FRAME_DATAGRAM, 1, ("x",))
    with pytest.raises(WireError):
        decode_frame(frame + b"\x00")


# ----------------------------------------------------------------------
# 3. attribution + the corruption-suspicion path
# ----------------------------------------------------------------------
def test_decode_error_carries_claimed_source():
    frame = bytearray(encode_frame(FRAME_DATAGRAM, 7, ("payload", 123)))
    frame[-1] ^= 0xFF          # corrupt the body, keep the header intact
    blob = bytes(frame)
    try:
        decode_frame(blob)
    except WireError as err:
        if err.src is not None:
            assert err.src == 7
    # header-level damage must leave src unattributed
    with pytest.raises(WireError) as exc:
        decode_frame(b"XX" + blob[2:])
    assert exc.value.src is None


def test_undecodable_rejects_feed_corruption_threshold():
    """note_undecodable strikes like a bad signature: after
    corruption_suspect_threshold rejects from one member the bottom
    layer reports it to the suspicion layer."""
    group = Group.bootstrap(4, config=StackConfig.byz(crypto="sym"), seed=5)
    try:
        process = group.processes[0]
        bottom = process.bottom
        threshold = process.config.corruption_suspect_threshold
        assert threshold > 1

        # unattributable noise: counted, suspects nobody
        bottom.note_undecodable(None)
        assert bottom.dropped_undecodable == 1
        assert not process.suspicion._local

        # repeated rejects from one member accumulate evidence on BOTH
        # trails (verbose fuzziness + signature strikes); by the
        # corruption threshold the member must be locally suspected
        for _ in range(threshold):
            bottom.note_undecodable(2)
        assert 2 in process.suspicion._local
        assert bottom.dropped_undecodable == 1 + threshold
    finally:
        group.stop()


# ----------------------------------------------------------------------
# 4. v2 batch container (the wire coalescer's frame format)
# ----------------------------------------------------------------------
subframe_lists = st.lists(
    st.tuples(st.sampled_from([FRAME_DATAGRAM, FRAME_GOSSIP]), values),
    min_size=1, max_size=6)


@given(st.integers(0, 1 << 20), subframe_lists)
def test_batch_round_trip(src, subframes):
    frames, errors = decode_datagram(encode_batch(src, subframes))
    assert errors == []
    assert frames == [(ft, src, payload) for ft, payload in subframes]


@given(st.sampled_from([FRAME_DATAGRAM, FRAME_GOSSIP]),
       st.integers(0, 1 << 20), values)
def test_decode_datagram_handles_plain_frames(frame_type, src, payload):
    # non-batch datagrams take the v1-compatible single-frame path
    frames, errors = decode_datagram(encode_frame(frame_type, src, payload))
    assert errors == []
    assert frames == [(frame_type, src, payload)]


@given(values)
def test_v1_frames_still_decode(payload):
    # v1's single-frame layout is unchanged -- only the version byte moved
    frame = bytearray(encode_frame(FRAME_DATAGRAM, 9, payload))
    assert frame[2] == WIRE_VERSION
    frame[2] = 1
    assert decode_frame(bytes(frame)) == (FRAME_DATAGRAM, 9, payload)
    frames, errors = decode_datagram(bytes(frame))
    assert errors == []
    assert frames == [(FRAME_DATAGRAM, 9, payload)]


def test_batches_require_v2():
    batch = bytearray(encode_batch(4, [(FRAME_DATAGRAM, ("a",))]))
    batch[2] = 1
    frames, errors = decode_datagram(bytes(batch))
    assert frames == []
    assert len(errors) == 1


@given(st.binary(max_size=300))
def test_decode_datagram_is_total_on_garbage(data):
    frames, errors = decode_datagram(data)
    assert isinstance(frames, list) and isinstance(errors, list)
    for err in errors:
        assert isinstance(err, WireError)


@given(subframe_lists, st.data())
def test_bit_flipped_batches_never_crash(subframes, data):
    batch = bytearray(encode_batch(3, subframes))
    bit = data.draw(st.integers(0, len(batch) * 8 - 1))
    batch[bit // 8] ^= 1 << (bit % 8)
    frames, errors = decode_datagram(bytes(batch))
    for err in errors:
        assert isinstance(err, WireError)
    # whatever survived must still be well-formed triples
    for frame in frames:
        assert len(frame) == 3


def test_corrupt_subframe_spares_siblings():
    """A bit flip inside one sub-frame body is attributed to the source
    while every sibling sub-frame still decodes (the length prefix is
    the resynchronization point)."""
    payloads = [("first", 1), ("second", 2), ("third", 3)]
    batch = bytearray(encode_batch(
        6, [(FRAME_DATAGRAM, p) for p in payloads]))
    # smash the middle sub-frame's leading value tag: its body becomes
    # undecodable while the third sub-frame's framing is untouched
    middle_body = (len(frame_prefix(FRAME_BATCH, 6)) + 4
                   + 5 + len(encode_value(payloads[0])) + 5)
    batch[middle_body] = 0xFF
    frames, errors = decode_datagram(bytes(batch))
    assert [f[2] for f in frames] == [payloads[0], payloads[2]]
    assert len(errors) == 1
    assert errors[0].src == 6


def test_corrupt_subframe_attributes_falsy_source():
    # node id 0 is falsy: attribution must use an `is None` check, not
    # truthiness, or node 0's corruption would read as unattributable
    batch = bytearray(encode_batch(
        0, [(FRAME_DATAGRAM, ("a", 1)), (FRAME_DATAGRAM, ("b", 2))]))
    batch[-len(encode_value(("b", 2)))] = 0xFF   # second body's value tag
    frames, errors = decode_datagram(bytes(batch))
    assert len(frames) == 1 and len(errors) == 1
    assert errors[0].src == 0


def test_truncated_batch_keeps_decoded_prefix():
    # framing damage (the datagram cut mid-sub-frame) loses the rest of
    # the batch but keeps everything decoded before the cut
    batch = encode_batch(2, [(FRAME_DATAGRAM, ("x",)),
                             (FRAME_DATAGRAM, ("y",))])
    frames, errors = decode_datagram(batch[:-3])
    assert [f[2] for f in frames] == [("x",)]
    assert len(errors) == 1 and errors[0].src == 2


def test_trailing_garbage_after_batch_flagged():
    batch = encode_batch(5, [(FRAME_DATAGRAM, ("x",))])
    frames, errors = decode_datagram(batch + b"\x00\x01")
    assert [f[2] for f in frames] == [("x",)]
    assert len(errors) == 1


def test_nested_batch_rejected():
    # FRAME_BATCH is not a legal sub-frame type (no recursion)
    with pytest.raises(WireError):
        encode_batch(1, [(FRAME_BATCH, ("x",))])
    batch = bytearray(encode_batch(1, [(FRAME_DATAGRAM, ("x",))]))
    batch[len(frame_prefix(FRAME_BATCH, 1)) + 4] = FRAME_BATCH
    # hand-forged on the wire: framing damage, one error, no frames
    frames, errors = decode_datagram(bytes(batch))
    assert frames == []
    assert len(errors) == 1


@given(messages, st.integers(0, 64), st.one_of(st.none(), st.integers(0, 64)))
def test_shared_prefix_plus_tail_equals_full_encoding(msg, dest, msg_id):
    """The encode-once fan-out seam: shared prefix + per-destination tail
    must be byte-identical to encoding the clone outright."""
    msg.msg_id = msg_id
    clone = msg.clone_for(dest)
    out = bytearray(encode_message_prefix(msg))
    encode_message_tail_into(clone, out)
    assert bytes(out) == encode_value(clone)
    assert decode_value(bytes(out)).wire_fields() == clone.wire_fields()


@given(st.sampled_from([FRAME_DATAGRAM, FRAME_GOSSIP]),
       st.integers(0, 1 << 20), values)
def test_frame_prefix_assembly_matches_encode_frame(frame_type, src, payload):
    import struct
    body = encode_value(payload)
    assembled = (frame_prefix(frame_type, src)
                 + struct.pack("!I", len(body)) + body)
    assert assembled == encode_frame(frame_type, src, payload)


# ----------------------------------------------------------------------
# 5. zero-copy decoding (docs/PERFORMANCE.md, "The CPU path")
# ----------------------------------------------------------------------
# The decoder walks a single memoryview over the datagram with offset
# slicing; only escaping values (bytes payloads, strings) are copied out.
# Contract: for ANY buffer type (bytes, bytearray, memoryview) and ANY
# damage, the decode outcome -- frames, error count, error attribution --
# is identical to the reference bytes-only decoder.

import repro.runtime.wire as wire_mod


def _no_views(value):
    """Decoded values must never leak memoryviews into the stack."""
    assert not isinstance(value, memoryview)
    if isinstance(value, (tuple, list, set, frozenset)):
        for item in value:
            _no_views(item)
    elif isinstance(value, dict):
        for k, v in value.items():
            _no_views(k)
            _no_views(v)


def _outcome(data):
    frames, errors = decode_datagram(data)
    return frames, [(type(e), e.src) for e in errors]


@given(st.integers(0, 1 << 20), subframe_lists)
def test_buffer_types_decode_identically(src, subframes):
    blob = encode_batch(src, subframes)
    reference = _outcome(blob)
    assert _outcome(bytearray(blob)) == reference
    assert _outcome(memoryview(blob)) == reference
    for _ft, _src, payload in reference[0]:
        _no_views(payload)


@given(values)
def test_frame_decode_from_memoryview(payload):
    frame = encode_frame(FRAME_DATAGRAM, 4, payload)
    assert decode_frame(memoryview(frame)) == decode_frame(frame)
    assert decode_value(memoryview(encode_value(payload))) == payload


def test_batch_truncation_at_every_offset_matches_bytes_path():
    # exhaustive truncation sweep: the zero-copy path must agree with the
    # bytes path on every prefix -- same surviving frames, same error
    # attribution, and never a non-WireError escape
    blob = encode_batch(3, [(FRAME_DATAGRAM, ("alpha", 1)),
                            (FRAME_GOSSIP, ("beta", (2, b"xy"))),
                            (FRAME_DATAGRAM, ("gamma",))])
    for cut in range(len(blob) + 1):
        assert _outcome(memoryview(blob[:cut])) == _outcome(blob[:cut]), \
            "zero-copy decode diverges at truncation offset %d" % cut


def test_corrupt_subframe_spares_siblings_from_memoryview():
    payloads = [("first", 1), ("second", 2), ("third", 3)]
    batch = bytearray(encode_batch(
        6, [(FRAME_DATAGRAM, p) for p in payloads]))
    middle_body = (len(frame_prefix(FRAME_BATCH, 6)) + 4
                   + 5 + len(encode_value(payloads[0])) + 5)
    batch[middle_body] = 0xFF
    frames, errors = decode_datagram(memoryview(batch))
    assert [f[2] for f in frames] == [payloads[0], payloads[2]]
    assert len(errors) == 1
    assert errors[0].src == 6


@given(subframe_lists, st.data())
def test_zero_copy_switch_is_invisible(subframes, data):
    # flip ZERO_COPY off (the copy-out reference decoder) and compare the
    # full outcome on both clean and bit-flipped batches; only the error
    # *strings* may differ, never the verdicts
    batch = bytearray(encode_batch(8, subframes))
    if data.draw(st.booleans()):
        bit = data.draw(st.integers(0, len(batch) * 8 - 1))
        batch[bit // 8] ^= 1 << (bit % 8)
    blob = bytes(batch)
    optimized = _outcome(memoryview(blob))
    saved = wire_mod.ZERO_COPY
    wire_mod.ZERO_COPY = False
    try:
        reference = _outcome(blob)
    finally:
        wire_mod.ZERO_COPY = saved
    assert optimized == reference


def test_decoded_strings_and_bytes_escape_the_buffer():
    # str/bytes leaves must be real copies: mutating the receive buffer
    # after decode must not change them (the transport reuses buffers)
    buf = bytearray(encode_frame(FRAME_DATAGRAM, 2, ("hello", b"world")))
    _ft, _src, payload = decode_frame(memoryview(buf))
    for i in range(len(buf)):
        buf[i] = 0
    assert payload == ("hello", b"world")
    assert type(payload[0]) is str and type(payload[1]) is bytes


def test_undecodable_ignores_strangers_and_stopped_stacks():
    group = Group.bootstrap(4, config=StackConfig.byz(crypto="sym"), seed=5)
    try:
        process = group.processes[1]
        bottom = process.bottom
        bottom.note_undecodable(99)          # not a member: counted only
        assert bottom.dropped_undecodable == 1
        assert not process.suspicion._local
    finally:
        group.stop()
    assert process.stopped
    bottom.note_undecodable(2)               # after stop: full no-op
    assert bottom.dropped_undecodable == 1
