"""Unit tests for the transport's wire-path aggregation (socket-free).

The datagram coalescer, the encode-once fan-out cache, and the
batch-receive drain live in :class:`repro.runtime.transport
.AsyncioTransport` but are pure buffer/callback logic: these tests drive
them with a fake event loop, a fake clock, and a recording fake UDP
endpoint -- no sockets, no asyncio loop, tier-1 safe.

Covered contracts:

* frames to one destination coalesce into one FRAME_BATCH datagram at
  the end-of-burst flush; a lone frame travels as a plain v1-layout
  frame (no batch overhead);
* the byte budget splits, never drops: an overflowing pack is flushed
  and the frame starts a fresh datagram;
* oversize frames (over the hard datagram ceiling) are dropped loudly:
  counter, observer hook, one stderr line per frame kind;
* the backstop timer flushes when no burst flush happens;
* clone_for fan-out hits the encode-once cache and the emitted bytes
  are identical to encoding each clone from scratch;
* gossip_cast counts a send only if >=1 transmit succeeded and accounts
  per-address failures (the counter-drift fix);
* a received batch enters the stack as ONE ``("pack", ...)`` container
  (nested pack payloads flattened), and a corrupt sub-frame feeds
  ``on_undecodable`` for that sub-frame only while siblings deliver;
* crash drops pending buffers, graceful close flushes them.
"""

from __future__ import annotations

import pytest

from repro.core.message import Message
from repro.core.view import ViewId
from repro.runtime.transport import MAX_DATAGRAM_BYTES, AsyncioTransport
from repro.runtime.wire import (
    FRAME_BATCH,
    FRAME_DATAGRAM,
    decode_datagram,
    decode_frame,
    encode_frame,
    encode_value,
)


class FakeTimer:
    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class FakeClock:
    """Records schedule() calls; fire_all() runs pending callbacks."""

    def __init__(self):
        self.scheduled = []   # (delay, callback, args, timer)

    def schedule(self, delay, callback, *args):
        timer = FakeTimer()
        self.scheduled.append((delay, callback, args, timer))
        return timer

    def fire_all(self):
        pending, self.scheduled = self.scheduled, []
        for _delay, callback, args, timer in pending:
            if not timer.cancelled:
                callback(*args)


class FakeLoop:
    """Collects call_soon callbacks; drain() runs them (one 'iteration')."""

    def __init__(self):
        self.ready = []

    def call_soon(self, callback, *args):
        self.ready.append((callback, args))

    def drain(self):
        ready, self.ready = self.ready, []
        for callback, args in ready:
            callback(*args)


class FakeUdp:
    """Recording sendto endpoint; per-address failure injection."""

    def __init__(self):
        self.sent = []        # (data, addr)
        self.fail_addrs = set()

    def sendto(self, data, addr):
        if addr in self.fail_addrs:
            raise OSError("injected")
        self.sent.append((bytes(data), addr))

    def close(self):
        pass


ADDRS = {0: ("127.0.0.1", 40000), 1: ("127.0.0.1", 40001),
         2: ("127.0.0.1", 40002), 3: ("127.0.0.1", 40003)}


def make_transport(node_id=0, coalescing=True):
    transport = AsyncioTransport(FakeClock(), node_id, ADDRS, loop=FakeLoop())
    transport._udp = FakeUdp()
    transport.coalescing = coalescing
    return transport


def msg(kind="cast", origin=0, payload=("data", 1), dest=None, msg_id=None):
    m = Message(kind, origin, ViewId(1, 0), payload, payload_size=16,
                dest=dest, msg_id=msg_id)
    m.signature = ("sig", origin)
    return m


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------
def test_burst_coalesces_into_one_batch_datagram():
    t = make_transport()
    for k in range(5):
        t.send(0, 1, 100, msg(msg_id=("m", k)))
    assert t._udp.sent == []          # nothing on the wire mid-burst
    t._loop.drain()                   # end-of-burst flush
    assert len(t._udp.sent) == 1
    data, addr = t._udp.sent[0]
    assert addr == ADDRS[1]
    assert data[3] == FRAME_BATCH
    frames, errors = decode_datagram(data)
    assert errors == []
    assert [f[2].msg_id for f in frames] == [("m", k) for k in range(5)]
    assert t.datagrams_sent == 1
    assert t.frames_sent == 5
    assert t.flush_reasons["burst"] == 1


def test_lone_frame_travels_as_plain_frame():
    t = make_transport()
    t.send(0, 1, 100, msg(msg_id=("solo",)))
    t._loop.drain()
    assert len(t._udp.sent) == 1
    data, _addr = t._udp.sent[0]
    assert data[3] == FRAME_DATAGRAM      # batch overhead stripped
    frame_type, src, payload = decode_frame(data)
    assert (frame_type, src) == (FRAME_DATAGRAM, 0)
    assert payload.msg_id == ("solo",)


def test_destinations_get_separate_datagrams():
    t = make_transport()
    t.send(0, 1, 100, msg(msg_id=("a",)))
    t.send(0, 2, 100, msg(msg_id=("b",)))
    t._loop.drain()
    assert sorted(addr for _d, addr in t._udp.sent) \
        == sorted((ADDRS[1], ADDRS[2]))


def test_size_budget_splits_instead_of_dropping():
    t = make_transport()
    t.coalesce_max_bytes = 600
    for k in range(6):
        t.send(0, 1, 100, msg(payload=("blob", "x" * 100, k)))
    t._loop.drain()
    assert len(t._udp.sent) >= 2          # split across datagrams...
    total = []
    for data, _addr in t._udp.sent:
        frames, errors = decode_datagram(data)
        assert errors == []
        total.extend(f[2].payload[2] for f in frames)
    assert total == list(range(6))        # ...nothing dropped, in order
    assert t.flush_reasons["size"] >= 1
    assert t.frames_sent == 6


def test_oversize_frame_dropped_loudly(capsys):
    t = make_transport()
    calls = []

    class Obs:
        def on_oversize_drop(self, node, kind):
            calls.append((node, kind))

        def on_datagram_sent(self, *a):
            pass

    t.observer = Obs()
    t.send(0, 1, 100, msg(kind="frag", payload=("x" * (MAX_DATAGRAM_BYTES))))
    t._loop.drain()
    assert t._udp.sent == []
    assert t.oversize_drops == 1
    assert calls == [(0, "frag")]
    err = capsys.readouterr().err
    assert "oversize" in err and "frag" in err
    # warn once per kind: a second drop is counted but not re-printed
    t.send(0, 1, 100, msg(kind="frag", payload=("y" * (MAX_DATAGRAM_BYTES))))
    assert t.oversize_drops == 2
    assert "frag" not in capsys.readouterr().err


def test_backstop_timer_flushes_without_burst_flush():
    t = make_transport()
    t.send(0, 1, 100, msg())
    assert t._udp.sent == []
    t.clock.fire_all()                    # timer fires before any drain
    assert len(t._udp.sent) == 1
    assert t.flush_reasons["timer"] == 1
    t._loop.drain()                       # late burst flush: nothing left
    assert len(t._udp.sent) == 1


def test_flush_cancels_backstop_timer():
    t = make_transport()
    t.send(0, 1, 100, msg())
    t._loop.drain()
    assert all(timer.cancelled for _d, _c, _a, timer in t.clock.scheduled)


def test_coalescing_off_sends_immediately():
    t = make_transport(coalescing=False)
    t.send(0, 1, 100, msg(msg_id=("now",)))
    assert len(t._udp.sent) == 1          # no buffering at all
    frame_type, src, payload = decode_frame(t._udp.sent[0][0])
    assert payload.msg_id == ("now",)
    assert t.datagrams_sent == 1 and t.frames_sent == 1


# ----------------------------------------------------------------------
# encode-once fan-out
# ----------------------------------------------------------------------
def test_fanout_hits_encode_cache_with_identical_bytes():
    t = make_transport()
    base = msg(msg_id=("bcast",))
    clones = [base.clone_for(dst) for dst in (1, 2, 3)]
    for clone in clones:
        t.send(0, clone.dest, 100, clone)
    assert t.encode_cache_hits == 2       # first clone misses, siblings hit
    t._loop.drain()
    for (data, _addr), clone in zip(t._udp.sent, clones):
        frames, errors = decode_datagram(data)
        assert errors == []
        # cache-assembled bytes == from-scratch encoding of the clone
        assert data.endswith(encode_value(clone))
        assert frames[0][2].wire_fields() == clone.wire_fields()


def test_diverged_clone_misses_cache():
    t = make_transport()
    base = msg(msg_id=("bcast",))
    first = base.clone_for(1)
    second = base.clone_for(2)
    second.push_header("inc", 7)          # COW divergence
    t.send(0, 1, 100, first)
    t.send(0, 2, 100, second)
    assert t.encode_cache_hits == 0
    t._loop.drain()
    frames, _ = decode_datagram(t._udp.sent[1][0])
    assert frames[0][2].header("inc") == 7


# ----------------------------------------------------------------------
# gossip accounting (the counter-drift fix)
# ----------------------------------------------------------------------
def test_gossip_cast_not_counted_when_every_transmit_fails():
    t = make_transport()
    t._udp.fail_addrs = set(ADDRS.values())
    t.gossip_cast(0, 64, ("announce", 1))
    assert t.gossips_sent == 0
    assert t.gossip_drops == len(ADDRS) - 1


def test_gossip_cast_counts_partial_fanout_once():
    t = make_transport()
    t._udp.fail_addrs = {ADDRS[2]}
    t.gossip_cast(0, 64, ("announce", 2))
    assert t.gossips_sent == 1            # reached someone
    assert t.gossip_drops == 1            # the failed address accounted
    assert len(t._udp.sent) == len(ADDRS) - 2


# ----------------------------------------------------------------------
# receive-side batch drain
# ----------------------------------------------------------------------
def collect_deliveries(t):
    inbox = []
    t.attach(t.node_id, lambda src, payload: inbox.append((src, payload)))
    return inbox


def test_batch_delivered_as_one_pack_container():
    receiver = make_transport(node_id=1)
    inbox = collect_deliveries(receiver)
    sender = make_transport(node_id=0)
    for k in range(3):
        sender.send(0, 1, 100, msg(msg_id=("m", k)))
    sender._loop.drain()
    receiver._on_datagram(sender._udp.sent[0][0], ADDRS[0])
    assert len(inbox) == 1                # ONE deliver call for the batch
    src, payload = inbox[0]
    assert src == 0
    assert payload[0] == "pack"
    assert [m.msg_id for m in payload[1]] == [("m", k) for k in range(3)]
    assert receiver.datagrams_delivered == 1
    assert receiver.frames_delivered == 3


def test_nested_pack_payloads_flatten():
    receiver = make_transport(node_id=1)
    inbox = collect_deliveries(receiver)
    sender = make_transport(node_id=0)
    # the bottom layer's own pack containers ride the coalescer too
    sender.send(0, 1, 100, ("pack", (msg(msg_id=("p", 0)),
                                     msg(msg_id=("p", 1)))))
    sender.send(0, 1, 100, msg(msg_id=("q",)))
    sender._loop.drain()
    receiver._on_datagram(sender._udp.sent[0][0], ADDRS[0])
    (src, payload), = inbox
    assert payload[0] == "pack"
    assert [m.msg_id for m in payload[1]] == [("p", 0), ("p", 1), ("q",)]


def test_corrupt_subframe_strikes_source_and_spares_siblings():
    receiver = make_transport(node_id=1)
    inbox = collect_deliveries(receiver)
    strikes = []
    receiver.on_undecodable = strikes.append
    sender = make_transport(node_id=0)
    for k in range(3):
        sender.send(0, 1, 100, msg(msg_id=("m", k)))
    sender._loop.drain()
    data = bytearray(sender._udp.sent[0][0])
    # smash the LAST sub-frame's value tag (offset of its body start)
    bodies = [encode_value(msg(msg_id=("m", k))) for k in range(3)]
    data[len(data) - len(bodies[2])] = 0xFF
    receiver._on_datagram(bytes(data), ADDRS[0])
    assert strikes == [0]                 # attributed to the claimed source
    assert receiver.undecodable == 1
    (_src, payload), = inbox              # siblings still delivered...
    assert [m.msg_id for m in payload[1]] == [("m", 0), ("m", 1)]
    assert receiver.frames_delivered == 2


def test_single_frame_delivers_unwrapped():
    receiver = make_transport(node_id=1)
    inbox = collect_deliveries(receiver)
    frame = encode_frame(FRAME_DATAGRAM, 0, msg(msg_id=("one",)))
    receiver._on_datagram(frame, ADDRS[0])
    (src, payload), = inbox
    assert src == 0 and payload.msg_id == ("one",)


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_crash_drops_pending_close_flushes():
    t = make_transport()
    t.send(0, 1, 100, msg())
    t.crash(0)
    assert t._udp is None or t._udp.sent == []
    assert t.datagrams_sent == 0          # crash semantics: buffer dropped

    t2 = make_transport()
    t2.send(0, 1, 100, msg(msg_id=("late",)))
    udp = t2._udp
    t2.close()                            # graceful: drains first
    assert len(udp.sent) == 1
    assert t2.flush_reasons["final"] == 1


def test_send_after_close_is_counted_dropped():
    t = make_transport()
    t.close()
    t.send(0, 1, 100, msg())
    assert t.datagrams_dropped == 1


# ----------------------------------------------------------------------
# configure: one packing policy shared with the sim pack queues
# ----------------------------------------------------------------------
def test_configure_adopts_stack_packing_policy():
    from repro.core.config import StackConfig
    t = make_transport()
    t.configure(StackConfig(wire_coalesce=False, wire_mtu=9000,
                            wire_coalesce_delay=0.005))
    assert t.coalescing is False
    assert t.coalesce_max_bytes == 9000
    assert t.coalesce_delay == 0.005
    # the backstop delay defaults to the shared packing_delay
    t.configure(StackConfig(packing_delay=0.0042))
    assert t.coalescing is True
    assert t.coalesce_delay == 0.0042
    # the wire budget is capped at the hard datagram ceiling
    t.configure(StackConfig(wire_mtu=10 ** 9))
    assert t.coalesce_max_bytes == MAX_DATAGRAM_BYTES
