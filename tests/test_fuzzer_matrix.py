"""Scenario fuzzing across the configuration matrix.

The base fuzzer runs the plain hardened stack; these runs point the same
random fault schedules at the other configurations -- crypto, packing,
gossip acks, uniform delivery -- where layer interactions differ.
"""

from repro import StackConfig
from repro.tools.fuzzer import ScenarioFuzzer


def run_fuzz(seed, config, ops=8, allow=("cast_burst", "run", "crash",
                                         "leave")):
    fuzzer = ScenarioFuzzer(seed, config=config, ops=ops, allow=allow)
    fuzzer.execute()
    violations = fuzzer.check()
    fuzzer.group.stop()
    assert not violations, (violations[:5], fuzzer.script)


def test_fuzz_sym_crypto():
    for seed in (31, 32):
        run_fuzz(seed, StackConfig.byz(crypto="sym"))


def test_fuzz_packing():
    for seed in (33, 34):
        run_fuzz(seed, StackConfig.byz(packing=True))


def test_fuzz_gossip_acks():
    for seed in (35, 36):
        run_fuzz(seed, StackConfig.byz(ack_mode="gossip"))


def test_fuzz_uniform_delivery():
    # uniform delivery + churn: the flush's pending-agreement handling
    run_fuzz(37, StackConfig.byz(uniform_delivery=True), ops=6)


def test_fuzz_sym_total_order():
    run_fuzz(38, StackConfig.byz(crypto="sym", total_order=True), ops=6,
             allow=("cast_burst", "run", "crash"))


def test_fuzz_partitions_with_packing():
    fuzzer = ScenarioFuzzer(39, config=StackConfig.byz(packing=True), ops=8,
                            allow=("cast_burst", "run", "partition", "heal"))
    fuzzer.execute()
    violations = fuzzer.check()
    fuzzer.group.stop()
    assert not violations, (violations[:5], fuzzer.script)
