"""The optimistic 2-step ordering fast path (ROADMAP item 3).

Unit tests drive :class:`FastPathConsensus` over the same direct message
bus as the vector-consensus tests; stack tests boot full groups with
``ordering_fast_path=True`` and check the layer integration -- pipelined
instances, identical total order, the view-change seam, the stale-instance
``dec`` responder, and equivalence of the delivered set with the fast
path off.
"""

import pytest

from repro import Group, StackConfig
from repro.consensus.fastpath import (FastPathConsensus, fast_coordinator,
                                      proposal_digest)
from repro.core.properties import check_virtual_synchrony
from repro.sim.scheduler import Simulator


class Harness:
    """Direct message bus between fast-path instances (no stack)."""

    def __init__(self, n, f, seed=0, latency=0.001, jitter=0.001):
        self.sim = Simulator(seed=seed)
        self.members = list(range(n))
        self.f = f
        self.latency = latency
        self.jitter = jitter
        self.instances = {}
        self.decisions = {}
        self.crashed = set()
        self.mute = set()
        self.suspected = {}   # observer -> set of suspects
        self.sent = []        # (sender, payload) of every broadcast
        self.fallbacks = []   # (member, reason)

    def broadcast_from(self, sender):
        def bcast(payload):
            self.sent.append((sender, payload))
            if sender in self.crashed or sender in self.mute:
                return
            for receiver in self.members:
                if receiver == sender or receiver in self.crashed:
                    continue
                delay = self.latency + self.sim.rng.random() * self.jitter
                self.sim.schedule(delay, self._deliver, receiver, sender,
                                  payload)
        return bcast

    def _deliver(self, receiver, sender, payload):
        if receiver in self.crashed:
            return
        self.instances[receiver].on_message(sender, payload)

    def build(self, proposals, seed_token=0, validate=None):
        for i in self.members:
            self.instances[i] = FastPathConsensus(
                "test", self.members, i, self.f, proposals[i],
                self.broadcast_from(i),
                is_suspected=lambda m, i=i: m in self.suspected.get(i, set()),
                on_decide=lambda v, i=i: self.decisions.__setitem__(i, v),
                coordinator_seed=seed_token,
                validate=validate,
                on_fallback=lambda r, i=i: self.fallbacks.append((i, r)))
        return self

    def start(self, skip=(), fast=True):
        for i in self.members:
            if i not in skip:
                self.instances[i].start(fast=fast)

    def coordinator(self):
        return self.instances[0].coordinator

    def run(self, until=5.0):
        self.sim.run(until=until, max_events=2_000_000)


# ----------------------------------------------------------------------
# unit: the 2-step protocol
# ----------------------------------------------------------------------
def test_two_step_decide_without_consensus_traffic():
    batch = ((("n0", 1), "payload", 16),)
    h = Harness(7, 1).build({i: (batch,) for i in range(7)})
    h.start()
    h.run()
    assert len(h.decisions) == 7
    assert set(h.decisions.values()) == {(batch,)}
    assert all(h.instances[i].fast_decided for i in range(7))
    assert h.fallbacks == []
    # only fast-path kinds on the wire: one proposal, n-1 echoes, nothing
    # from the classic val/coord/dec pattern
    kinds = {p[0] for _s, p in h.sent}
    assert kinds == {"fprop", "fecho"}
    assert sum(1 for _s, p in h.sent if p[0] == "fprop") == 1


def test_equivocating_coordinator_aborts_but_agreement_holds():
    h = Harness(7, 1).build({i: (("A",),) for i in range(7)})
    coord = h.coordinator()
    # the coordinator two-faces its proposal: half the members see B
    inst = h.instances[coord]
    real_bcast = h.broadcast_from(coord)

    def split_bcast(payload):
        if payload[0] != "fprop":
            real_bcast(payload)
            return
        for receiver in h.members:
            if receiver == coord:
                continue
            vec = (("B",),) if receiver % 2 else payload[1]
            delay = h.latency + h.sim.rng.random() * h.jitter
            h.sim.schedule(delay, h._deliver, receiver, coord,
                           ("fprop", vec))

    inst.broadcast = split_bcast
    h.start()
    h.run()
    # the split echo quorum cannot decide fast anywhere; everyone falls
    # back and consensus converges on a single value
    assert len(h.decisions) == 7
    assert len(set(h.decisions.values())) == 1
    assert any(r == "echo-conflict" for _i, r in h.fallbacks)
    assert not any(h.instances[i].fast_decided
                   for i in range(7) if i != coord)


def test_mute_coordinator_times_out_into_fallback():
    h = Harness(7, 1).build({i: ((i % 2,),) for i in range(7)})
    coord = h.coordinator()
    h.mute = {coord}
    h.start()
    h.run(until=0.05)
    assert not h.decisions        # nobody heard a proposal: still waiting
    for i in h.members:
        if i != coord:
            h.instances[i].timeout()
    # the fallback still awaits the mute member's round messages until
    # the failure detector speaks, exactly like plain vector consensus
    for i in h.members:
        if i == coord:
            continue
        h.suspected.setdefault(i, set()).add(coord)
        h.instances[i].notify_suspicion_change()
    h.run()
    live = [i for i in h.members if i != coord]
    assert all(i in h.decisions for i in live)
    assert len({h.decisions[i] for i in live}) == 1
    assert all(h.instances[i].fallback_reason == "timeout" for i in live)


def test_echo_certificate_seeds_the_fallback_estimate():
    h = Harness(7, 1).build({i: ((i,),) for i in range(7)})
    coord = h.coordinator()
    member = next(i for i in h.members if i != coord)
    inst = h.instances[member]
    inst.start()
    prop = h.instances[coord].proposal
    inst.on_message(coord, ("fprop", prop))
    assert inst._echoed == proposal_digest(prop)
    inst.timeout()
    # bound by its own echo: the fallback re-proposes the echoed vector,
    # not the member's local one -- the crux of fast/fallback agreement
    assert tuple(inst._vc.est) == prop
    assert inst.fallback_reason == "timeout"


def test_suspected_coordinator_triggers_fallback():
    h = Harness(7, 1).build({i: ((1,),) for i in range(7)})
    coord = h.coordinator()
    h.mute = {coord}
    h.start()
    for i in h.members:
        if i == coord:
            continue
        h.suspected.setdefault(i, set()).add(coord)
        h.instances[i].notify_suspicion_change()
    h.run()
    live = [i for i in h.members if i != coord]
    assert all(i in h.decisions for i in live)
    assert all(h.instances[i].fallback_reason == "suspicion" for i in live)


def test_arbitration_start_skips_fast_mode_silently():
    h = Harness(7, 1).build({i: ((1,),) for i in range(7)})
    h.start(fast=False)
    h.run()
    assert len(h.decisions) == 7
    assert all(h.instances[i].fallback_reason == "arbitration"
               for i in h.members)
    # arbitration is a mode choice, not an abort: no on_fallback calls
    assert h.fallbacks == []
    assert not any(p[0] in ("fprop", "fecho") for _s, p in h.sent)


def test_conflicting_echo_aborts_fast_mode():
    h = Harness(7, 1).build({i: ((1,),) for i in range(7)})
    coord = h.coordinator()
    member = next(i for i in h.members if i != coord)
    inst = h.instances[member]
    inst.start()
    inst.on_message(coord, ("fprop", ((1,),)))
    inst.on_message((member + 1) % 7, ("fecho", "bogus-digest"))
    assert inst.mode == "fallback"
    assert inst.fallback_reason == "echo-conflict"


def test_invalid_proposal_falls_back():
    h = Harness(7, 1).build({i: ((1,),) for i in range(7)},
                            validate=lambda vec: False)
    coord = h.coordinator()
    member = next(i for i in h.members if i != coord)
    inst = h.instances[member]
    inst.start()
    inst.on_message(coord, ("fprop", ((1,),)))
    assert inst.fallback_reason == "invalid-proposal"


def test_wait_verdict_echoes_after_revalidate():
    verdict = {"v": "wait"}
    h = Harness(7, 1).build({i: ((1,),) for i in range(7)},
                            validate=lambda vec: verdict["v"])
    coord = h.coordinator()
    member = next(i for i in h.members if i != coord)
    inst = h.instances[member]
    inst.start()
    inst.on_message(coord, ("fprop", ((1,),)))
    assert inst._echoed is None and inst.mode == "fast"
    verdict["v"] = True
    inst.revalidate()
    assert inst._echoed == proposal_digest(((1,),))


def test_resilience_bound_n_greater_6f():
    with pytest.raises(ValueError):
        FastPathConsensus("x", list(range(6)), 0, 1, ((1,),),
                          lambda p: None)
    FastPathConsensus("x", list(range(7)), 0, 1, ((1,),), lambda p: None)


def test_fast_coordinator_offset_from_fallback_rotation():
    # the fast proposer must not also lead the recovery round, or a
    # single faulty member could stall both paths in sequence
    members = list(range(13))
    seed = ("ord", "vid", 3)
    inst = FastPathConsensus("x", members, 0, 2, ((1,),), lambda p: None,
                             coordinator_seed=seed)
    inst.start(fast=False)
    assert fast_coordinator(members, seed) != inst._vc.coordinator_of(1)


# ----------------------------------------------------------------------
# stack: layer integration
# ----------------------------------------------------------------------
def fast_config(**kw):
    return StackConfig.byz(crypto="sym", total_order=True,
                           ordering_fast_path=True, **kw)


def boot(n, seed=7, **kw):
    return Group.bootstrap(n, config=fast_config(**kw), seed=seed)


def collect_orders(group):
    orders = {}
    for node, endpoint in group.endpoints.items():
        endpoint.record_events = False
        orders[node] = []
        endpoint.on_cast = (lambda event, acc=orders[node]:
                            acc.append((event.msg_id, event.payload)))
    return orders


def test_stack_fast_decides_identical_order():
    group = boot(8)
    orders = collect_orders(group)
    endpoints = list(group.endpoints.values())
    for i, endpoint in enumerate(endpoints[:5]):
        endpoint.cast(("m", i), size=32)
    group.run(1.0)
    assert len({tuple(o) for o in orders.values()}) == 1
    assert len(orders[0]) == 5
    layers = [p.stack.layer("ordering") for p in group.processes.values()]
    assert sum(ol.fast_decides for ol in layers) > 0
    assert sum(ol.fast_fallbacks for ol in layers) == 0
    for ol in layers:
        sizes = ol.state_sizes()
        assert sizes["instance_state"] == 0
        assert sizes["decided_backlog"] == 0
        assert sizes["buffer"] == 0
    group.stop()


def test_stack_pipelined_casts_all_delivered():
    # a second wave lands while the first instance is in flight: the
    # pipeline must order it without waiting out a full ordering tick
    group = boot(8)
    orders = collect_orders(group)
    endpoints = list(group.endpoints.values())
    for i, endpoint in enumerate(endpoints):
        group.sim.schedule(0.0003 * i, endpoint.cast, ("w", i))
    group.run(1.0)
    assert len({tuple(o) for o in orders.values()}) == 1
    assert len(orders[0]) == 8
    group.stop()


def test_stack_view_change_seam():
    group = boot(8)
    for k in range(6):
        group.endpoints[k % 8].cast(("pre", k))
    group.run(0.2)
    group.endpoints[7].leave()
    ok = group.run_until(lambda: all(p.view.n == 7
                                     for node, p in group.processes.items()
                                     if node != 7), timeout=5.0)
    assert ok
    for k in range(4):
        group.endpoints[k].cast(("post", k))
    group.run(0.5)
    execution = group.execution()
    violations = check_virtual_synchrony(execution, total_order=True)
    assert not violations, "\n".join(violations[:5])
    group.stop()


def test_stack_stale_responder_is_one_shot():
    group = boot(8)
    group.endpoints[0].cast(("solo", 0))
    group.run(0.5)
    layer = group.processes[0].stack.layer("ordering")
    archived = [k for k, e in layer._fast_decisions.items() if not e[2]]
    assert archived, "expected at least one archived fast decision"
    k = archived[0]
    sent = []
    layer._bcast_proto = lambda k, proto: sent.append((k, proto))
    # a straggler's classic round-1 val for an instance we fast-decided:
    # answer once with the decision, then stay quiet
    layer._on_stale_order_msg(1, k, ("val", 1, (("x",),)))
    layer._on_stale_order_msg(1, k, ("val", 1, (("x",),)))
    assert len(sent) == 1
    assert sent[0][0] == k and sent[0][1][0] == "dec"
    # benign traffic for the same instance never triggers a response
    vector, digest, _ = layer._fast_decisions[k]
    layer._fast_decisions[k][2] = False
    layer._on_stale_order_msg(2, k, ("fecho", digest))
    layer._on_stale_order_msg(2, k, ("dec", vector))
    assert len(sent) == 1
    group.stop()


def test_stack_fast_on_off_deliver_same_messages():
    def run_once(fast):
        config = StackConfig.byz(crypto="sym", total_order=True,
                                 ordering_fast_path=fast)
        group = Group.bootstrap(8, config=config, seed=11)
        orders = collect_orders(group)
        endpoints = list(group.endpoints.values())
        for i, endpoint in enumerate(endpoints[:6]):
            group.sim.schedule(0.003 * i, endpoint.cast, ("x", i))
        group.run(1.5)
        group.stop()
        assert len({tuple(o) for o in orders.values()}) == 1
        return orders[0]

    fast_order = run_once(True)
    slow_order = run_once(False)
    # batching differs, so the *order* may differ between the two runs --
    # but both are internally consistent (asserted above) and must
    # deliver exactly the same set of messages
    assert {m for m, _p in fast_order} == {m for m, _p in slow_order}
    assert len(fast_order) == 6
