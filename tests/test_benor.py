"""Tests for the randomized Ben-Or-family binary consensus."""

import random

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.benor import BenOrConsensus, max_f_benor
from repro.sim.scheduler import Simulator


def run_benor(n, f, proposals, seed=0, crashed=frozenset()):
    sim = Simulator(seed=seed)
    members = list(range(n))
    instances = {}
    decisions = {}

    def bcast_from(sender):
        def bcast(payload):
            if sender in crashed:
                return
            for receiver in members:
                if receiver != sender and receiver not in crashed:
                    sim.schedule(0.001 + sim.rng.random() * 0.002,
                                 lambda r=receiver, s=sender, p=payload:
                                 instances[r].on_message(s, p))
        return bcast

    for i in members:
        coin_rng = random.Random(seed * 1000 + i)
        instances[i] = BenOrConsensus(
            "b", members, i, f, proposals[i], bcast_from(i),
            coin=lambda rng=coin_rng: rng.randint(0, 1),
            on_decide=lambda v, i=i: decisions.__setitem__(i, v))
    for i in members:
        if i not in crashed:
            instances[i].start()
    sim.run(max_events=3_000_000)
    return decisions, instances


def test_unanimous_proposals_decide_fast():
    decisions, instances = run_benor(6, 1, {i: 1 for i in range(6)})
    assert len(decisions) == 6
    assert set(decisions.values()) == {1}
    assert max(inst.rounds_executed for inst in instances.values()) <= 2


def test_validity_zero_unanimous():
    decisions, _ = run_benor(6, 1, {i: 0 for i in range(6)})
    assert set(decisions.values()) == {0}


def test_agreement_with_split_proposals():
    for seed in range(5):
        decisions, _ = run_benor(6, 1, {i: i % 2 for i in range(6)},
                                 seed=seed)
        assert len(decisions) == 6, "seed %d" % seed
        assert len(set(decisions.values())) == 1, "seed %d" % seed


def test_terminates_with_crashed_members():
    n, f = 11, 2
    crashed = frozenset({9, 10})
    decisions, _ = run_benor(n, f, {i: i % 2 for i in range(n)},
                             crashed=crashed, seed=3)
    live = [i for i in range(n) if i not in crashed]
    assert all(i in decisions for i in live)
    assert len({decisions[i] for i in live}) == 1


def test_no_failure_detector_needed():
    # unlike the vector consensus, nothing here consults suspicion state:
    # termination under crashes needs no oracle at all
    decisions, instances = run_benor(11, 2, {i: 1 for i in range(11)},
                                     crashed=frozenset({10}), seed=4)
    assert len(decisions) == 10


def test_resilience_bound():
    with pytest.raises(ValueError):
        BenOrConsensus("x", list(range(5)), 0, 1, 1, lambda p: None,
                       coin=lambda: 0)
    assert max_f_benor(5) == 0
    assert max_f_benor(6) == 1
    assert max_f_benor(11) == 2


def test_non_binary_proposal_rejected():
    with pytest.raises(ValueError):
        BenOrConsensus("x", list(range(6)), 0, 1, "maybe", lambda p: None,
                       coin=lambda: 0)


def test_equivocation_and_garbage_reported():
    reports = []
    inst = BenOrConsensus("x", list(range(6)), 0, 1, 1, lambda p: None,
                          coin=lambda: 0,
                          on_misbehavior=lambda m, r: reports.append(r))
    inst.start()
    inst.on_message(2, ("R", 1, 0))
    inst.on_message(2, ("R", 1, 1))       # equivocation
    inst.on_message(3, ("R", 1, "_bot_"))  # bottom in a report
    inst.on_message(4, "garbage")
    assert "benor:equivocated" in reports
    assert "benor:bottom-report" in reports
    assert "benor:malformed" in reports


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=6, max_value=12),
       st.integers(min_value=0, max_value=2**31),
       st.data())
def test_benor_agreement_validity_random(n, seed, data):
    f = max_f_benor(n)
    proposals = {i: data.draw(st.integers(0, 1), label="p%d" % i)
                 for i in range(n)}
    decisions, _ = run_benor(n, f, proposals, seed=seed)
    assert len(decisions) == n
    decided = set(decisions.values())
    assert len(decided) == 1
    inputs = set(proposals.values())
    if len(inputs) == 1:
        assert decided == inputs
    else:
        assert decided.pop() in (0, 1)
