"""Soak-plane tests: bounded-state checker, state-size hooks, soak runs.

The ``soak``-marked test at the bottom is the acceptance run (>= 1M
simulated events under the Def 2.1/2.2 checker plus the bounded-state
checker); it is excluded from tier-1 by the pytest marker and runs in the
nightly CI job.
"""

import pytest

from tests.helpers import make_group

from repro.tournament import BoundedStateChecker, run_soak
from repro.tournament.soak import SOAK_SCHEMA


# ----------------------------------------------------------------------
# a minimal group stand-in so checker unit tests need no simulator
# ----------------------------------------------------------------------
class _StubSim:
    def __init__(self):
        self.now = 0.0


class _StubProcess:
    def __init__(self):
        self.sizes = {}
        self.stopped = False

    def state_sizes(self):
        return dict(self.sizes)


class _StubGroup:
    def __init__(self, nodes=2):
        self.sim = _StubSim()
        self.processes = {node: _StubProcess() for node in range(nodes)}
        self.byzantine_nodes = set()


def feed(checker, group, values, metric="m", quiescent=False):
    """One sample per entry in ``values``, applied to node 0."""
    for value in values:
        group.processes[0].sizes[metric] = value
        group.sim.now += 1.0
        checker.sample(group, quiescent=quiescent)


# ----------------------------------------------------------------------
# BoundedStateChecker
# ----------------------------------------------------------------------
def test_bounded_checker_flags_monotone_growth():
    checker = BoundedStateChecker(growth_slack=2.0, growth_floor=10)
    group = _StubGroup(nodes=1)
    feed(checker, group, [20 * i for i in range(1, 17)])
    violations = checker.check()
    assert len(violations) == 1 and "state growth" in violations[0]
    assert checker.max_sizes() == {"m": 320}


def test_bounded_checker_tolerates_plateau_and_spikes():
    checker = BoundedStateChecker(growth_slack=2.0, growth_floor=10)
    group = _StubGroup(nodes=1)
    # fills toward a plateau, with churn spikes that always come back down
    series = [40, 80, 120, 160, 200, 200, 900, 200,
              200, 200, 850, 200, 200, 200, 200, 200]
    feed(checker, group, series)
    assert checker.check() == []


def test_bounded_checker_growth_floor_filters_small_tables():
    checker = BoundedStateChecker(growth_slack=1.5, growth_floor=64)
    group = _StubGroup(nodes=1)
    feed(checker, group, list(range(1, 17)))   # rising, but tiny
    assert checker.check() == []


def test_bounded_checker_quiescent_caps():
    checker = BoundedStateChecker(quiescent_caps={"stash": 10})
    group = _StubGroup(nodes=1)
    group.processes[0].sizes["stash"] = 50
    checker.sample(group, quiescent=False)     # mid-churn spike: allowed
    assert checker.check() == []
    checker.sample(group, quiescent=True)      # after recovery: not allowed
    violations = checker.check()
    assert len(violations) == 1 and "state cap" in violations[0]


def test_bounded_checker_skips_stopped_and_byzantine():
    checker = BoundedStateChecker(quiescent_caps={"stash": 1})
    group = _StubGroup(nodes=3)
    for process in group.processes.values():
        process.sizes["stash"] = 99
    group.processes[1].stopped = True
    group.byzantine_nodes.add(2)
    checker.sample(group, quiescent=True)
    assert len(checker.check()) == 1           # only node 0 judged


def test_bounded_checker_recovery_bound():
    checker = BoundedStateChecker(recovery_bound=2.0)
    checker.record_recovery(1.5, at=10.0)
    checker.record_recovery(3.0, at=20.0)
    checker.record_recovery(None, at=30.0)
    violations = checker.check()
    assert len(violations) == 2
    assert any("exceeds bound" in line for line in violations)
    assert any("never re-stabilized" in line for line in violations)
    assert checker.recoveries() == [(10.0, 1.5), (20.0, 3.0), (30.0, None)]


# ----------------------------------------------------------------------
# state-size hooks on the real stack
# ----------------------------------------------------------------------
def test_state_sizes_cover_every_stateful_layer():
    group = make_group(4, seed=0)
    group.run(0.5)
    sizes = group.processes[0].state_sizes()
    prefixes = {metric.split(".", 1)[0] for metric in sizes}
    assert prefixes >= {"bottom", "reliable", "membership", "suspicion",
                        "state_transfer", "stability", "fuzzy", "process"}
    assert all(isinstance(v, int) and v >= 0 for v in sizes.values())
    assert sizes["process.last_heard"] == 4
    group.stop()


# ----------------------------------------------------------------------
# the stability-listener leak (regression)
# ----------------------------------------------------------------------
def _churn_with_stability_wait(checker, rounds=12):
    """Crash/restart churn with the coordinator's stability wait forced.

    ``all_stable`` is usually already true by the time the cut completes
    (the reliable layer's cut retransmission doubles as acknowledgement),
    so the per-change subscription only happens in a narrow race.  The
    wrapper answers "not yet" to the first query of each change, forcing
    the membership layer through its real subscribe-wait-unsubscribe
    path on every view change -- the path the leak lived on.
    """
    from repro.layers.stability import StabilityTracker

    real_all_stable = StabilityTracker.all_stable
    queries = {}

    def lagged(self, cut, members):
        count = queries.get(id(self), 0)
        queries[id(self)] = count + 1
        if count % 2 == 0:
            # the AWAIT_VIEW entry query: report "not yet stable" so the
            # coordinator subscribes; the re-query from the very next
            # ack-matrix notify answers truthfully and releases the wait
            return False
        return real_all_stable(self, cut, members)

    StabilityTracker.all_stable = lagged
    group = make_group(5, seed=11)
    try:
        group.run(0.5)
        for round_no in range(rounds):
            # fresh app traffic each round: every change flushes a new,
            # larger cut, so the first-query-lags-once wrapper above
            # forces one stability wait per change
            for node in range(4):
                group.endpoints[node].cast(("churn", round_no, node))
            group.crash(4)
            group.run(0.6)
            group.restart(4)
            group.run(0.8)
            checker.sample(group)
        return max(p.stability.state_sizes()["listeners"]
                   for p in group.processes.values())
    finally:
        StabilityTracker.all_stable = real_all_stable
        group.stop()


def test_stability_listeners_bounded_under_view_churn():
    """Membership pairs every per-change stability subscription with an
    unsubscribe, so the listener list stays flat across view churn."""
    checker = BoundedStateChecker(growth_slack=1.5, growth_floor=4)
    peak = _churn_with_stability_wait(checker)
    # the flow layer's one standing registration, nothing per-change
    assert peak <= 2, peak
    assert not [v for v in checker.check() if "stability.listeners" in v]


def test_soak_checker_catches_resurrected_listener_leak():
    """Flipping the revert flag re-opens the leak: one dead listener per
    view change, which the bounded-state checker must flag under churn."""
    from repro.layers.membership import MembershipLayer

    leaky = BoundedStateChecker(growth_slack=1.5, growth_floor=4)
    assert MembershipLayer.unsubscribe_stability is True
    MembershipLayer.unsubscribe_stability = False
    try:
        peak = _churn_with_stability_wait(leaky)
    finally:
        MembershipLayer.unsubscribe_stability = True
    assert peak > 4, peak
    violations = leaky.check()
    assert any("stability.listeners" in v for v in violations), violations


# ----------------------------------------------------------------------
# soak runs
# ----------------------------------------------------------------------
def test_mini_soak_passes_and_reports():
    report = run_soak(seed=3, n=5, target_events=30_000, recovery_bound=5.0)
    assert report["schema"] == SOAK_SCHEMA and report["kind"] == "soak"
    assert report["verdict"] == "pass", (report["violations"],
                                         report["state_violations"])
    assert report["events_processed"] >= 30_000
    assert report["cycles"] >= 1
    assert report["recovery"]["measured"] >= 1
    assert report["recovery"]["stuck"] == 0
    assert report["plan_hash"]
    assert report["max_sizes"]


def test_mini_soak_deterministic_per_seed():
    a = run_soak(seed=5, n=5, target_events=25_000)
    b = run_soak(seed=5, n=5, target_events=25_000)
    assert a == b
    c = run_soak(seed=6, n=5, target_events=25_000)
    assert c["events_processed"] != a["events_processed"] or \
        c["max_sizes"] != a["max_sizes"]


def test_soak_runs_byzantine_episodes():
    report = run_soak(seed=2, n=6, target_events=120_000)
    assert report["verdict"] == "pass", (report["violations"],
                                         report["state_violations"])
    assert report["byzantine_episodes"] >= 1


@pytest.mark.soak
def test_soak_one_million_events():
    """The acceptance soak: >= 1M events of churn, all checkers green."""
    report = run_soak(seed=7, n=6, target_events=1_000_000,
                      recovery_bound=5.0)
    assert report["events_processed"] >= 1_000_000
    assert report["verdict"] == "pass", (report["violations"],
                                         report["state_violations"])
    assert report["recovery"]["stuck"] == 0
    assert report["byzantine_episodes"] >= 1
