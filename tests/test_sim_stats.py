"""Unit tests for the measurement probes."""

import math

from repro.sim.scheduler import Simulator
from repro.sim.stats import (LatencyProbe, ThroughputProbe, mean, percentile,
                             stddev)


def test_mean_and_empty_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert math.isnan(mean([]))


def test_percentile_nearest_rank():
    samples = list(range(1, 101))
    assert percentile(samples, 50) == 50
    assert percentile(samples, 99) == 99
    assert percentile(samples, 100) == 100
    assert math.isnan(percentile([], 50))


def test_stddev():
    assert stddev([2.0, 2.0, 2.0]) == 0.0
    assert abs(stddev([1.0, 3.0]) - math.sqrt(2.0)) < 1e-12
    assert stddev([1.0]) == 0.0


def test_throughput_probe_windows():
    sim = Simulator()
    probe = ThroughputProbe(sim)
    probe.record(5)  # before start: ignored
    probe.start()
    sim.schedule(1.0, lambda: probe.record(100))
    sim.schedule(2.0, probe.stop)
    sim.schedule(3.0, lambda: probe.record(999))  # after stop: ignored
    sim.run()
    assert probe.count == 100
    assert probe.elapsed == 2.0
    assert probe.rate == 50.0


def test_latency_probe_begin_end():
    probe = LatencyProbe()
    probe.begin("a", 1.0)
    probe.begin("b", 2.0)
    probe.end("a", 1.5)
    probe.end("b", 3.0)
    probe.end("missing", 9.0)  # no matching begin: ignored
    assert sorted(probe.samples) == [0.5, 1.0]
    assert probe.mean == 0.75
    assert probe.maximum == 1.0
