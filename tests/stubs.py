"""Stub harness for true single-layer unit tests.

Builds a :class:`GroupProcess`-compatible environment around ONE layer:
a recording stub below it and a recording stub above it, plus real
detectors and a real simulator.  This lets tests poke a layer with
hand-crafted messages and observe exactly what it emits, without the
rest of the stack reacting.
"""

from __future__ import annotations

from repro.core.config import StackConfig
from repro.core.history import History
from repro.core.view import View, ViewId
from repro.crypto.auth import make_authenticator
from repro.crypto.keys import KeyManager
from repro.detectors.fuzzy import FuzzyLevels
from repro.detectors.mute import FuzzyMuteDetector
from repro.detectors.verbose import FuzzyVerboseDetector
from repro.layers.base import Layer, LayerStack
from repro.layers.stability import StabilityTracker
from repro.sim.network import Cpu
from repro.sim.scheduler import Simulator


class RecordingLayer(Layer):
    """Absorbs and records everything that reaches it."""

    def __init__(self, name):
        super().__init__()
        self.name = name
        self.received_up = []
        self.received_down = []

    def handle_up(self, msg):
        self.received_up.append(msg)

    def handle_down(self, msg):
        self.received_down.append(msg)


class StubProcess:
    """Just enough of GroupProcess for a layer under test."""

    def __init__(self, layer, node_id=0, members=(0, 1, 2, 3), config=None,
                 seed=0):
        self.sim = Simulator(seed=seed)
        self.node_id = node_id
        self.config = config or StackConfig.byz()
        self.view = View(ViewId(1, members[0]), members,
                         f=self.config.resilience(len(members)))
        self.f = self.view.f
        self.cpu = Cpu(self.sim)
        self.keys = KeyManager()
        self.auth = make_authenticator(self.config.crypto, self.keys,
                                       self.config.crypto_costs)
        self.history = History(node_id)
        self.endpoint = None
        self.stopped = False
        self.behavior = None
        self.mute_levels = FuzzyLevels(self.sim, "mute", 10.0, 1.0)
        self.verbose_levels = FuzzyLevels(self.sim, "verbose", 10.0, 1.0)
        self.mute_detector = FuzzyMuteDetector(self.sim, self.mute_levels,
                                               self.config.mute_timeout)
        self.verbose_detector = FuzzyVerboseDetector(self.sim,
                                                     self.verbose_levels)
        self.stability = StabilityTracker(self)
        self.stability.reset(self.view)
        self._last_heard = {}
        self.below = RecordingLayer("below")
        self.above = RecordingLayer("above")
        self.layer = layer
        self.stack = LayerStack(self, [self.below, layer, self.above])

    # services the layers might call ------------------------------------
    class FakeReliable:
        """Stands in for the reliable layer when testing layers above it."""

        def __init__(self):
            self.wedged = False
            self.cut = None
            self.state = {}
            self.complete = True

        def wedge(self):
            self.wedged = True

        def stream_state(self):
            return dict(self.state)

        def set_cut(self, cut, on_complete=None):
            self.cut = dict(cut)
            if self.complete and on_complete is not None:
                on_complete()

        def cut_complete(self, cut):
            return self.complete

    def note_heard_from(self, src):
        self._last_heard[src] = self.sim.now

    def last_heard(self, member):
        return self._last_heard.get(member, 0.0)

    def ordering_freeze(self, undecidable):
        return (0, 0)

    def flush_app(self, k_star, on_done, undecidable=False):
        on_done()

    def gossip(self, payload, size=64):
        pass

    @property
    def reliable(self):
        if getattr(self, "fake_reliable", None) is not None:
            return self.fake_reliable
        return self.layer  # when the layer under test IS the reliable layer

    @property
    def suspicion(self):
        return self.layer

    @property
    def top(self):
        return self.above

    # test conveniences ---------------------------------------------------
    def feed_up(self, msg):
        """Deliver a message to the layer as if from below."""
        self.layer.handle_up(msg)

    def feed_down(self, msg):
        self.layer.handle_down(msg)

    def run(self, duration):
        self.sim.run(until=self.sim.now + duration)


def stub_for(layer, **kw):
    process = StubProcess(layer, **kw)
    layer_started = getattr(layer, "start", None)
    if layer_started is not None:
        layer.start()
    return process
