"""Tests for Byzantine-safe state transfer to joiners."""

from tests.helpers import make_group

from repro import Group, StackConfig
from repro.apps.rsm import Replica
from repro.layers.state_transfer import snapshot_digest


def rsm_group(n, seed):
    group = Group.bootstrap(n, config=StackConfig.byz(total_order=True),
                            seed=seed)
    replicas = {node: Replica(group.endpoints[node])
                for node in group.endpoints}
    return group, replicas


def test_joiner_receives_vouched_state():
    group, replicas = rsm_group(6, seed=1)
    replicas[0].submit(("set", "balance", 100))
    replicas[1].submit(("incr", "balance", 11))
    group.run(0.6)
    newcomer = Replica(group.add_node(6))
    ok = group.run_until(
        lambda: all(p.view.n == 7 for p in group.processes.values()),
        timeout=8.0)
    assert ok
    group.run(0.5)
    assert newcomer.machine.data == {"balance": 111}
    assert newcomer.state_digest() == replicas[0].state_digest()
    assert group.processes[6].stack.layer("state_transfer").installed == 1


def test_joiner_participates_after_transfer():
    group, replicas = rsm_group(6, seed=2)
    replicas[0].submit(("set", "x", 1))
    group.run(0.5)
    newcomer = Replica(group.add_node(6))
    group.run_until(lambda: all(p.view.n == 7
                                for p in group.processes.values()),
                    timeout=8.0)
    group.run(0.4)
    newcomer.submit(("incr", "x", 5))
    group.run(0.6)
    values = {r.machine.data.get("x") for r in replicas.values()}
    values.add(newcomer.machine.data.get("x"))
    assert values == {6}


def test_two_joiners_both_catch_up():
    group, replicas = rsm_group(6, seed=3)
    replicas[2].submit(("set", "k", "v"))
    group.run(0.5)
    first = Replica(group.add_node(6))
    group.run_until(lambda: all(p.view.n == 7
                                for p in group.processes.values()),
                    timeout=8.0)
    group.run(0.3)
    second = Replica(group.add_node(7))
    group.run_until(lambda: all(p.view.n == 8
                                for p in group.processes.values()),
                    timeout=8.0)
    group.run(0.5)
    assert first.machine.data == {"k": "v"}
    assert second.machine.data == {"k": "v"}


def test_forged_snapshot_outvoted_by_digest_quorum():
    group, replicas = rsm_group(8, seed=4)
    replicas[0].submit(("set", "truth", 1))
    group.run(0.5)
    # the NEXT coordinator (who pushes the snapshot) will lie: patch its
    # provider to emit a forged state whose digest cannot win the vote
    from repro.core.view import choose_coordinator
    old = group.processes[0].view
    liar = choose_coordinator(old.vid.counter, old.mbrs)  # next generator
    group.endpoints[liar].state_provider = (
        lambda: ("kv", (("truth", 666),), 1))
    group.byzantine_nodes = {liar}
    newcomer = Replica(group.add_node(8))
    group.run_until(lambda: all(p.view.n == 9
                                for p in group.processes.values()),
                    timeout=8.0)
    group.run(1.5)
    transfer = group.processes[8].stack.layer("state_transfer")
    assert transfer.installed == 1
    assert newcomer.machine.data == {"truth": 1}, newcomer.machine.data


def test_transfer_inert_without_provider():
    group = make_group(5, seed=5)
    group.run(0.1)
    group.add_node(5)
    ok = group.run_until(lambda: all(p.view.n == 6
                                     for p in group.processes.values()),
                         timeout=8.0)
    assert ok
    transfer = group.processes[5].stack.layer("state_transfer")
    assert transfer.installed == 0  # nothing to transfer, nothing broke


def test_snapshot_digest_stable():
    snap = ("kv", (("a", 1), ("b", 2)), 7)
    assert snapshot_digest(snap) == snapshot_digest(("kv",
                                                     (("a", 1), ("b", 2)), 7))
    assert snapshot_digest(snap) != snapshot_digest(("kv", (("a", 2),), 7))
