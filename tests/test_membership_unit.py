"""Unit tests driving the membership layer's FSM through the stub harness."""

from tests.stubs import StubProcess

from repro.core import message as mk
from repro.core.message import Message
from repro.core.view import View, ViewId
from repro.layers.membership import MembershipLayer


class FakeSuspicion:
    def __init__(self):
        self._suspected = set()

    def suspected_set(self):
        return set(self._suspected)

    def is_suspected(self, member):
        return member in self._suspected

    def suspect_locally(self, member, reason="x"):
        self._suspected.add(member)

    def adopt(self, member, reason="x"):
        self._suspected.add(member)


_ORIGINAL_SUSPICION = StubProcess.suspicion


def membership_stub(members=(0, 1, 2, 3, 4, 5, 6, 7), me=0):
    layer = MembershipLayer()
    process = StubProcess(layer, node_id=me, members=members)
    process.fake_reliable = StubProcess.FakeReliable()
    process._fake_suspicion = FakeSuspicion()
    StubProcess.suspicion = property(
        lambda self: getattr(self, "_fake_suspicion", None)
        or _ORIGINAL_SUSPICION.fget(self))
    layer.start()
    return process


def teardown_module(module):
    # restore the stub's original suspicion property
    StubProcess.suspicion = _ORIGINAL_SUSPICION


def sync_msg(process, origin, epoch, report, ord_k=(0, 0)):
    wire_report = tuple(sorted(report.items(), key=repr))
    msg = Message(mk.KIND_SYNC, origin, process.view.vid,
                  ("report", epoch, wire_report, ord_k))
    msg.sender = origin
    return msg


def test_begin_runs_consensus_then_sync():
    process = membership_stub()
    layer = process.layer
    process._fake_suspicion.suspect_locally(7)
    layer.on_control("start-view-change", {"suspected": {7}})
    assert layer._state == "consensus"
    assert process.stack.blocked
    # feed the other members' identical proposals: 1-round decision
    proposal = tuple(1 if m == 7 else 0 for m in process.view.mbrs)
    iid = layer._consensus.instance_id
    for sender in (1, 2, 3, 4, 5, 6, 7):
        msg = Message(mk.KIND_CONSENSUS, sender, process.view.vid,
                      (iid, ("val", 1, proposal)))
        msg.sender = sender
        layer.handle_up(msg)
    assert layer._state == "sync"
    assert process.fake_reliable.wedged
    assert layer._survivors == [0, 1, 2, 3, 4, 5, 6]
    # our own SYNC went out
    sync_out = [m for m in process.below.received_down
                if m.kind == mk.KIND_SYNC]
    assert len(sync_out) == 1


def drive_to_sync(process, failed=7):
    layer = process.layer
    process._fake_suspicion.suspect_locally(failed)
    layer.on_control("start-view-change", {"suspected": {failed}})
    proposal = tuple(1 if m == failed else 0 for m in process.view.mbrs)
    iid = layer._consensus.instance_id
    for sender in process.view.mbrs:
        if sender == process.node_id:
            continue
        msg = Message(mk.KIND_CONSENSUS, sender, process.view.vid,
                      (iid, ("val", 1, proposal)))
        msg.sender = sender
        layer.handle_up(msg)
    return layer


def test_sync_reports_from_all_survivors_produce_cut():
    process = membership_stub()
    layer = drive_to_sync(process)
    epoch = layer._epoch
    for origin in (1, 2, 3, 4, 5, 6):
        layer.handle_up(sync_msg(process, origin, epoch, {0: 3, 1: 5}))
    # all survivors reported: the agreed cut is the entry-wise max
    assert process.fake_reliable.cut is not None
    assert process.fake_reliable.cut[1] == 5
    assert layer._state == "await-view"  # FakeReliable completes instantly


def test_sync_from_failed_member_does_not_count():
    process = membership_stub()
    layer = drive_to_sync(process, failed=7)
    epoch = layer._epoch
    layer.handle_up(sync_msg(process, 7, epoch, {0: 99}))  # the evictee
    assert 7 not in layer._sync_reports or layer._state == "sync"
    # still waiting: survivors 1..6 have not reported
    assert process.fake_reliable.cut is None


def test_malformed_sync_flagged():
    process = membership_stub()
    layer = drive_to_sync(process)
    bad = Message(mk.KIND_SYNC, 1, process.view.vid, ("report", "x"))
    bad.sender = 1
    layer.handle_up(bad)
    assert process.verbose_detector.violations >= 1


def test_stale_epoch_sync_ignored():
    process = membership_stub()
    layer = drive_to_sync(process)
    layer.handle_up(sync_msg(process, 1, 999, {0: 1}))
    assert 1 not in layer._sync_reports


def test_merge_request_to_non_coordinator_ignored():
    process = membership_stub(me=0)  # coordinator of vid(1;...) is member 1
    layer = process.layer
    foreign = View(ViewId(0, "z"), ("z",), coordinator="z")
    req = Message(mk.KIND_MERGE, "z", process.view.vid,
                  ("request", foreign.to_wire()), dest=0)
    req.sender = "z"
    layer.handle_up(req)
    assert layer._pending_joiners is None
    assert layer._state == "idle"


def test_merge_request_overlapping_membership_rejected():
    process = membership_stub(me=1)  # 1 IS the coordinator
    layer = process.layer
    foreign = View(ViewId(0, 3), (3,), coordinator=3)  # 3 already a member
    req = Message(mk.KIND_MERGE, 3, process.view.vid,
                  ("request", foreign.to_wire()), dest=1)
    req.sender = 3
    layer.handle_up(req)
    assert layer._pending_joiners is None


def test_vacuous_view_change_aborts():
    process = membership_stub()
    layer = process.layer
    layer.on_control("start-view-change", {"suspected": set()})
    proposal = tuple(0 for _ in process.view.mbrs)
    iid = layer._consensus.instance_id
    for sender in process.view.mbrs:
        if sender == process.node_id:
            continue
        msg = Message(mk.KIND_CONSENSUS, sender, process.view.vid,
                      (iid, ("val", 1, proposal)))
        msg.sender = sender
        layer.handle_up(msg)
    assert layer._state == "idle"
    assert not process.stack.blocked
    assert layer.view_changes == 0


# ----------------------------------------------------------------------
# lossy-transport liveness: the two recovery paths the UDP conformance
# workload exposed (see docs/RUNTIME.md, "Lossy-transport hardening")
# ----------------------------------------------------------------------
def test_sync_report_racing_the_decision_is_stashed_then_folded():
    """A flush report that arrives while we are still deciding must not
    be dropped: the ctl stream delivers it exactly once, and the sender
    never repeats it at our epoch -- dropping wedged the flush forever."""
    process = membership_stub()
    layer = process.layer
    process._fake_suspicion.suspect_locally(7)
    layer.on_control("start-view-change", {"suspected": {7}})
    assert layer._state == "consensus"
    early = sync_msg(process, 1, layer._epoch, {0: 3, 1: 5})
    layer.handle_up(early)
    assert 1 not in layer._sync_reports
    assert any(origin == 1 for origin, _e, _r, _k in layer._sync_pending)
    # now the consensus decides; the stashed report counts immediately
    proposal = tuple(1 if m == 7 else 0 for m in process.view.mbrs)
    iid = layer._consensus.instance_id
    for sender in process.view.mbrs:
        if sender == process.node_id:
            continue
        msg = Message(mk.KIND_CONSENSUS, sender, process.view.vid,
                      (iid, ("val", 1, proposal)))
        msg.sender = sender
        layer.handle_up(msg)
    assert layer._state in ("sync", "await-view")
    assert layer._sync_reports.get(1) == {0: 3, 1: 5}


def test_foreign_gossip_naming_me_triggers_rejoin_request():
    """A newer view that still lists us means we missed its install (a
    lost NEWVIEW): ask that coordinator for a resend.  The merge path
    cannot recover this case -- the views are not disjoint."""
    from repro.layers.heartbeat import stack_fingerprint
    process = membership_stub(members=(0,), me=0)
    layer = process.layer
    foreign = View(ViewId(5, 3), (0, 1, 2, 3), coordinator=3,
                   f=process.config.resilience(4))
    data = {"src": 3, "view": foreign,
            "fingerprint": stack_fingerprint(process.config)}
    layer.on_control("foreign-gossip", data)
    requests = [m for m in process.below.received_down
                if m.kind == mk.KIND_MERGE]
    assert len(requests) == 1
    assert requests[0].payload == ("rejoin",)
    assert requests[0].dest == 3
    # throttled: a second gossip inside the gossip interval is ignored
    layer.on_control("foreign-gossip", data)
    assert len([m for m in process.below.received_down
                if m.kind == mk.KIND_MERGE]) == 1
    process.run(2 * process.config.gossip_interval)
    layer.on_control("foreign-gossip", data)
    assert len([m for m in process.below.received_down
                if m.kind == mk.KIND_MERGE]) == 2


def test_rejoin_request_from_member_gets_view_resend():
    process = membership_stub(me=1)  # 1 IS the coordinator
    layer = process.layer
    req = Message(mk.KIND_MERGE, 3, process.view.vid, ("rejoin",), dest=1)
    req.sender = 3
    layer.handle_up(req)
    offers = [m for m in process.below.received_down
              if m.kind == mk.KIND_NEWVIEW]
    assert len(offers) == 1
    assert offers[0].dest == 3
    assert offers[0].payload[0] == "joined"
    assert offers[0].payload[1] == process.view.to_wire()
    # no change state was touched: the resend is pure
    assert layer._state == "idle"
    assert layer._pending_joiners is None


def test_rejoin_request_from_stranger_ignored():
    process = membership_stub(me=1)
    layer = process.layer
    req = Message(mk.KIND_MERGE, "z", process.view.vid, ("rejoin",), dest=1)
    req.sender = "z"
    layer.handle_up(req)
    assert not [m for m in process.below.received_down
                if m.kind == mk.KIND_NEWVIEW]


def test_rejoin_offer_installs_directly_from_singleton():
    process = membership_stub(members=(0,), me=0)
    layer = process.layer
    installed = []
    process.install_view = installed.append
    offered = View(ViewId(5, 3), (0, 1, 2, 3), coordinator=3,
                   f=process.config.resilience(4))
    offer = Message(mk.KIND_NEWVIEW, 3, process.view.vid,
                    ("joined", offered.to_wire()), dest=0)
    offer.sender = 3
    layer.handle_up(offer)
    assert len(installed) == 1
    assert installed[0].vid == offered.vid
    assert tuple(installed[0].mbrs) == (0, 1, 2, 3)
