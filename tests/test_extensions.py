"""Tests for the extension features: archive trimming and packing.

Both are discussed but not measured by the paper: buffer compaction via
stability (section 3.1) and the packing/batching optimization of [33]
(footnote 3: "can dramatically boost the performance, especially for
small messages").
"""

from tests.helpers import cast_payloads, make_group

from repro import Group, StackConfig
from repro.core.properties import check_virtual_synchrony
from repro.sim.network import NetworkConfig


# ----------------------------------------------------------------------
# archive trimming
# ----------------------------------------------------------------------
def test_archive_trimmed_once_stable():
    group = make_group(4, seed=1)
    for k in range(300):
        group.endpoints[0].cast(("t", k))
    group.run(1.0)
    for process in group.processes.values():
        assert process.reliable.archive_trimmed > 200
        assert process.reliable.archive_size < 200


def test_trimming_does_not_break_recovery():
    config = StackConfig.byz()
    group = Group.bootstrap(4, config=config, seed=2,
                            net_config=NetworkConfig(drop_prob=0.1))
    for k in range(100):
        group.endpoints[0].cast(("r", k))
    group.run(2.5)
    for node in range(4):
        payloads = [p for p in cast_payloads(group.endpoints[node])
                    if isinstance(p, tuple) and p[0] == "r"]
        assert payloads == [("r", k) for k in range(100)], "node %d" % node


# ----------------------------------------------------------------------
# packing
# ----------------------------------------------------------------------
def test_packed_stack_delivers_fifo():
    def run(packing):
        group = make_group(5, seed=3, packing=packing)
        for k in range(40):
            group.endpoints[0].cast(("p", k))
        group.run(0.5)
        for node in range(5):
            payloads = [p for p in cast_payloads(group.endpoints[node])
                        if isinstance(p, tuple) and p[0] == "p"]
            assert payloads == [("p", k) for k in range(40)]
        return group

    packed = run(True)
    plain = run(False)
    assert packed.processes[0].bottom.packets_packed > 0
    # packing coalesced the burst (idle-period heartbeats/acks ride alone,
    # so the whole-run ratio is modest; under load it is ~10x, see the
    # throughput test below)
    assert (packed.network.datagrams_sent
            < 0.85 * plain.network.datagrams_sent)


def test_packing_boosts_small_message_throughput():
    from repro.apps.ring import RingDemo

    def throughput(packing):
        group = Group.bootstrap(8, config=StackConfig.byz(packing=packing),
                                seed=4)
        ring = RingDemo(group, burst=32)
        ring.start()
        group.run(0.05)
        ring.start_measurement()
        group.run(0.08)
        ring.stop_measurement()
        group.stop()
        return ring.throughput

    plain = throughput(False)
    packed = throughput(True)
    # the paper predicts "at least a factor of 10, and as much as ... 90
    # for 1 byte messages"; at 16 bytes we demand a conservative 3x
    assert packed > 3 * plain, (plain, packed)


def test_packing_with_sym_crypto_still_verifies():
    group = make_group(5, seed=5, packing=True, crypto="sym")
    for k in range(20):
        group.endpoints[1].cast(("s", k))
    group.run(0.5)
    for node in range(5):
        payloads = [p for p in cast_payloads(group.endpoints[node])
                    if isinstance(p, tuple) and p[0] == "s"]
        assert payloads == [("s", k) for k in range(20)]
    assert all(p.bottom.dropped_bad_signature == 0
               for p in group.processes.values())


def test_packed_stack_survives_crash_and_keeps_properties():
    group = make_group(6, seed=6, packing=True)
    for k in range(10):
        group.endpoints[0].cast(("c", k))
    group.run(0.1)
    group.crash(5)
    ok = group.run_until(lambda: all(p.view.n == 5
                                     for p in group.processes.values()
                                     if not p.stopped), timeout=5.0)
    assert ok
    group.run(0.5)
    execution = group.execution()
    execution.correct.discard(5)
    violations = check_virtual_synchrony(execution)
    assert not violations, "\n".join(violations[:5])


def test_packing_label():
    assert StackConfig.byz(packing=True).label() == "ByzEns+NoCrypto+Pack"


def test_pack_queue_accounting_and_flush_threshold():
    """The O(1) running byte total must track the queue exactly, and the
    flush must trigger at the same point the original sum() check did:
    the first enqueue that makes the queue total reach the MTU."""
    group = make_group(3, seed=30, packing=True)
    process = group.processes[0]
    bottom = process.bottom
    mtu = process.config.mtu
    dst = 1

    from repro.core import message as mk
    from repro.core.message import Message

    def enqueue(size):
        msg = Message(mk.KIND_CAST, 0, process.view.vid, ("pk", size),
                      payload_size=size)
        bottom._enqueue_packed(dst, msg, size)

    # stay strictly below the threshold: queue grows, total tracks sum()
    step = mtu // 4
    for expected_len in range(1, 4):
        enqueue(step)
        queue = bottom._pack_queues[dst]
        assert len(queue) == expected_len
        assert bottom._pack_bytes[dst] == sum(s for _m, s in queue)
        assert bottom._pack_bytes[dst] < mtu
    # the enqueue that reaches the MTU flushes immediately
    before = bottom.packets_packed
    enqueue(mtu - 3 * step)
    assert bottom.packets_packed == before + 1
    assert dst not in bottom._pack_queues
    assert dst not in bottom._pack_bytes
    # a single over-MTU message flushes on its own as well
    enqueue(mtu + 1)
    assert bottom.packets_packed == before + 2
    assert dst not in bottom._pack_queues
    assert dst not in bottom._pack_bytes
    group.stop()


# ----------------------------------------------------------------------
# gossip ack dissemination ([29]; the paper's section-6 extension)
# ----------------------------------------------------------------------
def test_gossip_ack_mode_delivers_and_stabilizes():
    group = make_group(8, seed=20, ack_mode="gossip")
    for k in range(25):
        group.endpoints[0].cast(("ga", k))
    group.run(1.0)
    for node in range(8):
        payloads = [p for p in cast_payloads(group.endpoints[node])
                    if isinstance(p, tuple) and p[0] == "ga"]
        assert payloads == [("ga", k) for k in range(25)]
    # stability knowledge spread without any ack broadcast
    tracker = group.processes[5].stability
    assert tracker.min_ack(0, "a", group.processes[5].view.mbrs) == 25


def test_gossip_ack_mode_survives_view_change():
    group = make_group(8, seed=21, ack_mode="gossip")
    for k in range(10):
        group.endpoints[1].cast(("gv", k))
    group.run(0.2)
    group.crash(7)
    ok = group.run_until(lambda: all(p.view.n == 7
                                     for p in group.processes.values()
                                     if not p.stopped), timeout=5.0)
    assert ok
    group.run(0.3)
    execution = group.execution()
    execution.correct.discard(7)
    violations = check_virtual_synchrony(execution)
    assert not violations, violations[:5]


def test_gossip_ack_message_cost_scales_better():
    def ack_datagrams(mode, n=24):
        group = make_group(n, seed=22, ack_mode=mode)
        group.run(0.5)  # idle: only heartbeats + acks
        sent = sum(p.bottom.messages_signed for p in group.processes.values())
        group.stop()
        return group.network.datagrams_sent

    broadcast_cost = ack_datagrams("broadcast")
    gossip_cost = ack_datagrams("gossip")
    # broadcast acks cost n-1 datagrams each; gossip costs fanout
    assert gossip_cost < 0.6 * broadcast_cost, (gossip_cost, broadcast_cost)


def test_matrix_ack_rejected_in_broadcast_mode():
    group = make_group(4, seed=23)  # broadcast mode
    process = group.processes[0]
    from repro.core.message import Message
    from repro.core import message as mk
    bogus = Message(mk.KIND_ACK, 2, process.view.vid,
                    ("matrix", ((3, ((0, "a", 99),)),)), dest=0)
    bogus.sender = 2
    process.reliable.handle_up(bogus)
    assert process.verbose_detector.violations >= 1
    # and the lie did not enter the matrix
    assert process.stability.acked_seq(3, 0, "a") == 0
