"""Unit tests for the vector Byzantine consensus (Algorithm 1)."""

import pytest

from repro.consensus.interface import max_f_consensus
from repro.consensus.vector import VectorConsensus
from repro.sim.scheduler import Simulator


class Harness:
    """Direct message bus between consensus instances (no stack)."""

    def __init__(self, n, f, seed=0, latency=0.001, jitter=0.001):
        self.sim = Simulator(seed=seed)
        self.members = list(range(n))
        self.f = f
        self.latency = latency
        self.jitter = jitter
        self.instances = {}
        self.decisions = {}
        self.crashed = set()
        self.mute = set()
        self.suspected = {}   # observer -> set of suspects

    def broadcast_from(self, sender):
        def bcast(payload):
            if sender in self.crashed or sender in self.mute:
                return
            for receiver in self.members:
                if receiver == sender or receiver in self.crashed:
                    continue
                delay = self.latency + self.sim.rng.random() * self.jitter
                self.sim.schedule(delay, self._deliver, receiver, sender,
                                  payload)
        return bcast

    def _deliver(self, receiver, sender, payload):
        if receiver in self.crashed:
            return
        self.instances[receiver].on_message(sender, payload)

    def build(self, proposals, seed_token=0):
        for i in self.members:
            self.instances[i] = VectorConsensus(
                "test", self.members, i, self.f, proposals[i],
                self.broadcast_from(i),
                is_suspected=lambda m, i=i: m in self.suspected.get(i, set()),
                on_decide=lambda v, i=i: self.decisions.__setitem__(i, v),
                coordinator_seed=seed_token)
        return self

    def start(self, skip=()):
        for i in self.members:
            if i not in skip:
                self.instances[i].start()

    def suspect_everywhere(self, member):
        for i in self.members:
            self.suspected.setdefault(i, set()).add(member)
            self.instances[i].notify_suspicion_change()

    def run(self, until=5.0):
        self.sim.run(until=until, max_events=2_000_000)

    def live(self):
        return [i for i in self.members
                if i not in self.crashed and i not in self.mute]


def test_fast_path_identical_proposals_one_round():
    h = Harness(7, 1).build({i: (1, 0, 1) for i in range(7)})
    h.start()
    h.run()
    assert len(h.decisions) == 7
    assert set(h.decisions.values()) == {(1, 0, 1)}
    assert all(h.instances[i].rounds_executed == 1 for i in range(7))


def test_validity_unanimous_entries_must_win():
    # entry 0 unanimous 1, entry 1 unanimous 0, entry 2 mixed
    proposals = {i: (1, 0, i % 2) for i in range(13)}
    h = Harness(13, 2).build(proposals)
    h.start()
    h.run()
    assert len(h.decisions) == 13
    decided = set(h.decisions.values())
    assert len(decided) == 1
    vec = decided.pop()
    assert vec[0] == 1 and vec[1] == 0
    assert vec[2] in (0, 1)


def test_agreement_under_mixed_proposals_many_seeds():
    for seed in range(6):
        proposals = {i: tuple((i + k) % 2 for k in range(13)) for i in range(13)}
        h = Harness(13, 2, seed=seed).build(proposals, seed_token=seed)
        h.start()
        h.run()
        assert len(h.decisions) == 13, "termination failed (seed=%d)" % seed
        assert len(set(h.decisions.values())) == 1, "agreement failed"


def test_termination_with_crashed_minority():
    n, f = 13, 2
    h = Harness(n, f)
    h.crashed = {11, 12}
    h.build({i: (i % 2,) * n for i in range(n)})
    for i in range(n):
        h.suspected[i] = set(h.crashed)
    h.start(skip=h.crashed)
    h.run()
    live = [i for i in range(n) if i not in h.crashed]
    assert all(i in h.decisions for i in live)
    assert len({h.decisions[i] for i in live}) == 1


def test_termination_with_mute_member_detected_by_fd():
    n, f = 13, 2
    h = Harness(n, f)
    h.mute = {4}
    h.build({i: (1,) * n for i in range(n)})
    h.start()
    # nothing decides until the failure detector speaks: node 4's silence
    # blocks the "all non-suspected" wait
    h.run(until=0.2)
    h.suspect_everywhere(4)
    h.run()
    live = [i for i in range(n) if i != 4]
    assert all(i in h.decisions for i in live)


def test_mute_coordinator_is_rotated_past():
    n, f = 13, 2
    h = Harness(n, f)
    # conflicting proposals force coordinator dependence
    h.build({i: tuple((i + k) % 2 for k in range(n)) for i in range(n)})
    coord_r1 = h.instances[0].coordinator_of(1)
    h.mute = {coord_r1}
    h.start()
    h.run(until=0.3)
    if len(h.decisions) < n - 1:
        h.suspect_everywhere(coord_r1)
        h.run()
    live = [i for i in range(n) if i != coord_r1]
    assert all(i in h.decisions for i in live)
    assert len({h.decisions[i] for i in live}) == 1


def test_equivocating_val_reported_not_counted_twice():
    h = Harness(7, 1)
    reports = []
    h.build({i: (0,) * 7 for i in range(7)})
    inst = h.instances[0]
    inst.on_misbehavior = lambda m, r: reports.append((m, r))
    inst.start()
    inst.on_message(3, ("val", 1, (1,) * 7))
    inst.on_message(3, ("val", 1, (0,) * 7))  # different estimate, same round
    assert ("consensus:equivocated-val" in r for _m, r in reports)
    assert inst._val_msgs[1][3] == (1,) * 7  # first version kept


def test_wrong_shape_vector_rejected():
    h = Harness(7, 1)
    reports = []
    h.build({i: (0,) * 7 for i in range(7)})
    inst = h.instances[0]
    inst.on_misbehavior = lambda m, r: reports.append(r)
    inst.start()
    inst.on_message(2, ("val", 1, (1, 2)))          # wrong width
    inst.on_message(2, ("val", 1, "not-a-vector"))  # wrong type
    inst.on_message(2, ("val", 1, ([1],) * 7))      # unhashable entries
    assert len(reports) == 3


def test_coord_message_from_non_coordinator_rejected():
    h = Harness(7, 1)
    reports = []
    h.build({i: (0,) * 7 for i in range(7)})
    inst = h.instances[0]
    inst.on_misbehavior = lambda m, r: reports.append(r)
    inst.start()
    usurper = next(m for m in range(7) if m != inst.coordinator_of(1))
    inst.on_message(usurper, ("coord", 1, (1,) * 7))
    assert "consensus:coord-usurper" in reports


def test_non_member_messages_ignored():
    h = Harness(7, 1)
    h.build({i: (0,) * 7 for i in range(7)})
    inst = h.instances[0]
    inst.start()
    inst.on_message(99, ("val", 1, (1,) * 7))
    assert 99 not in inst._val_msgs[1]


def test_dec_message_satisfies_later_round_waits():
    # a process that decided keeps "answering" via its dec broadcast
    h = Harness(7, 1).build({i: (1,) * 7 for i in range(7)})
    for i in range(6):
        h.suspected[i] = {6}  # the FD flags the straggler
    h.start(skip=(6,))
    h.run(until=1.0)
    # node 6 starts late; everyone else has decided and moved on
    assert len(h.decisions) == 6
    h.instances[6].start()
    h.run()
    assert 6 in h.decisions
    assert h.decisions[6] == (1,) * 7


def test_resilience_bound_enforced():
    with pytest.raises(ValueError):
        VectorConsensus("x", list(range(6)), 0, 1, (0,) * 6, lambda p: None)


def test_generic_value_domain():
    # total ordering uses 1-entry vectors over message batches
    batch_a = ((("n0", 1), "payload-a", 16),)
    batch_b = ((("n1", 1), "payload-b", 16),)
    proposals = {i: (batch_a if i % 2 == 0 else batch_b,) for i in range(13)}
    h = Harness(13, 2).build(proposals)
    h.start()
    h.run()
    assert len(h.decisions) == 13
    decided = set(h.decisions.values())
    assert len(decided) == 1
    assert decided.pop()[0] in (batch_a, batch_b)


def test_max_f_consensus_bound():
    assert max_f_consensus(6) == 0
    assert max_f_consensus(7) == 1
    assert max_f_consensus(12) == 1
    assert max_f_consensus(13) == 2
    assert max_f_consensus(50) == 8


def test_double_start_rejected():
    h = Harness(7, 1).build({i: (0,) * 7 for i in range(7)})
    h.instances[0].start()
    with pytest.raises(RuntimeError):
        h.instances[0].start()


def test_coordinator_schedule_deterministic_across_instances():
    h1 = Harness(9, 1).build({i: (0,) * 9 for i in range(9)}, seed_token=42)
    h2 = Harness(9, 1).build({i: (0,) * 9 for i in range(9)}, seed_token=42)
    assert [h1.instances[0].coordinator_of(r) for r in range(1, 6)] == \
           [h2.instances[3].coordinator_of(r) for r in range(1, 6)]


def test_frozen_instance_only_decides_by_dec_adoption():
    h = Harness(7, 1).build({i: (i % 2,) for i in range(7)})
    inst = h.instances[0]
    inst.start()
    inst.freeze_rounds()
    inst.dec_adoption_quorum = 2
    # round progression is frozen: flooding vals changes nothing
    for sender in range(1, 7):
        inst.on_message(sender, ("val", 1, (1,)))
    assert not inst.decided
    # two matching decs (the quorum) decide it
    inst.on_message(3, ("dec", (1,)))
    assert not inst.decided
    inst.on_message(4, ("dec", (1,)))
    assert inst.decided and inst.decision == (1,)


def test_dec_adoption_requires_matching_quorum():
    h = Harness(7, 1).build({i: (0,) for i in range(7)})
    inst = h.instances[0]
    inst.start()
    inst.freeze_rounds()
    inst.dec_adoption_quorum = 2
    inst.on_message(3, ("dec", (1,)))
    inst.on_message(4, ("dec", (0,)))  # conflicting dec: no quorum
    assert not inst.decided
    inst.on_message(5, ("dec", (1,)))
    assert inst.decided and inst.decision == (1,)
