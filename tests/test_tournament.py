"""Adversary-tournament tests: search loop, operators, bug rediscovery.

The rediscovery tests are the heart of the robustness story: with a PR 3
bug fix reverted behind its test-only flag, the tournament must find a
violating plan within a bounded budget and ddmin-shrink it to a small
replayable counterexample -- deterministically per seed.
"""

from contextlib import contextmanager

from repro.broadcast.bracha import BrachaBroadcast
from repro.broadcast.uniform import UniformBroadcast
from repro.chaos import FaultPlan, run_plan
from repro.layers.membership import MembershipLayer
from repro.tournament import evaluate_plan, run_tournament
from repro.tournament.search import (_perturb_scalar, _random_op,
                                     crossover_ops, mutate_ops)

import random


# ----------------------------------------------------------------------
# regression-revert switches (PR 3 bug fixes, resurrected for the search)
# ----------------------------------------------------------------------
@contextmanager
def vid_reuse_bug():
    """Revert the vid-counter floor: restarted coordinators reuse vids."""
    MembershipLayer.vid_counter_floor = False
    try:
        yield
    finally:
        MembershipLayer.vid_counter_floor = True


@contextmanager
def livelock_bug():
    """Revert the one-shot view send + idempotent originate fixes."""
    MembershipLayer.oneshot_view_send = False
    UniformBroadcast.idempotent_originate = False
    BrachaBroadcast.idempotent_originate = False
    try:
        yield
    finally:
        MembershipLayer.oneshot_view_send = True
        UniformBroadcast.idempotent_originate = True
        BrachaBroadcast.idempotent_originate = True


#: op vocabulary for the rediscovery runs: membership churn only, no
#: link faults -- keeps every evaluation cheap and the search focused
CHURN_OPS = ("cast", "run", "crash", "restart", "leave", "join", "heal")


# ----------------------------------------------------------------------
# genetic operators
# ----------------------------------------------------------------------
def test_random_op_always_well_formed():
    rng = random.Random(3)
    allow = CHURN_OPS + ("partition", "drop", "nic", "skew", "byzantine_at")
    for _ in range(200):
        op = _random_op(rng, 5, allow)
        assert isinstance(op, list) and op
        assert op[0] in allow or op[0] == "run"


def test_perturb_scalar_touches_numeric_fields_only():
    rng = random.Random(5)
    assert _perturb_scalar(rng, ["heal"]) == ["heal"]
    for _ in range(20):
        out = _perturb_scalar(rng, ["cast", 2, 4])
        assert out[0] == "cast" and out[1] == 2 and out[2] in (2, 8)
        out = _perturb_scalar(rng, ["run", 0.4])
        assert out[1] in (0.2, 0.8)


def test_mutate_and_crossover_return_fresh_lists():
    rng = random.Random(7)
    ops = [["cast", 0, 3], ["run", 0.2]]
    mutated = mutate_ops(rng, ops, 4, CHURN_OPS)
    assert mutated is not ops
    assert ops == [["cast", 0, 3], ["run", 0.2]]  # parent untouched
    child = crossover_ops(rng, ops, [["crash", 1], ["heal"]])
    assert all(isinstance(op, list) for op in child)
    assert crossover_ops(rng, [], ops) == ops


def test_evaluate_plan_scores_clean_run_low():
    plan = FaultPlan(seed=4, n=4, ops=[["cast", 0, 2], ["run", 0.5]])
    outcome = evaluate_plan(plan, event_budget=200_000, settle=1.5)
    assert not outcome["failed"]
    assert not outcome["violations"] and not outcome["stalled"]
    assert outcome["recovery_time"] is not None
    assert outcome["score"] < 100.0


# ----------------------------------------------------------------------
# the search loop
# ----------------------------------------------------------------------
def test_tournament_deterministic_per_seed():
    kw = dict(n=4, population=2, generations=2, plan_ops=3,
              allow=("cast", "run", "crash", "heal"),
              event_budget=60_000, settle=1.0, shrink=False)
    a = run_tournament(seed=11, **kw)
    b = run_tournament(seed=11, **kw)
    assert a["best"]["plan_hash"] == b["best"]["plan_hash"]
    assert a["history"] == b["history"]
    assert a["evaluations"] == b["evaluations"]
    assert a["best"]["score"] == b["best"]["score"]
    c = run_tournament(seed=12, **kw)
    assert c["best"]["plan_hash"] != a["best"]["plan_hash"] or \
        c["history"] != a["history"]


def test_tournament_report_shape():
    report = run_tournament(seed=11, n=4, population=2, generations=1,
                            plan_ops=3, allow=("cast", "run", "heal"),
                            event_budget=60_000, settle=1.0, shrink=False)
    assert report["schema"] == 2 and report["kind"] == "tournament"
    assert report["params"]["population"] == 2
    assert report["generations_run"] == 1
    assert len(report["history"]) == 1
    assert report["best"]["plan_hash"]
    assert report["resume_key"]["population"] == 2
    assert len(report["evaluated"]) == report["evaluations"]
    assert report["cache_hits"] == 0 and not report["timed_out"]


def test_tournament_minutes_budget_and_deterministic_resume():
    """A wall-clock-cut run resumed from its report must land exactly
    where an uninterrupted run lands -- the evaluated cache replays the
    prefix, the rng replays the breeding, and the clock only ever cuts
    between evaluations."""
    import json

    kw = dict(n=4, population=3, generations=3, plan_ops=3,
              allow=("cast", "run", "crash", "heal"),
              event_budget=60_000, settle=1.0, shrink=False,
              stop_on_failure=False)
    full = run_tournament(seed=21, **kw)

    # fake clock: each call advances one "second"; budget of 5 cuts the
    # first run after a handful of evaluations
    def make_clock():
        state = {"t": 0.0}
        def clock():
            state["t"] += 1.0
            return state["t"]
        return clock

    first = run_tournament(seed=21, minutes=5.0 / 60.0, clock=make_clock(),
                           **kw)
    assert first["timed_out"]
    assert len(first["evaluated"]) < len(full["evaluated"])

    # a JSON round-trip is what the CLI feeds back in
    first = json.loads(json.dumps(first, default=str))
    resumed = run_tournament(seed=21, resume=first, **kw)
    assert resumed["cache_hits"] == len(first["evaluated"])
    assert resumed["evaluations"] == \
        len(full["evaluated"]) - len(first["evaluated"])
    assert resumed["best"]["plan_hash"] == full["best"]["plan_hash"]
    assert resumed["best"]["score"] == full["best"]["score"]
    assert resumed["history"] == full["history"]
    assert [r["plan_hash"] for r in resumed["evaluated"]] == \
        [r["plan_hash"] for r in full["evaluated"]]


def test_tournament_resume_rejects_mismatched_params():
    kw = dict(n=4, population=2, generations=1, plan_ops=3,
              allow=("cast", "run", "heal"),
              event_budget=60_000, settle=1.0, shrink=False)
    report = run_tournament(seed=11, **kw)
    other = dict(kw, plan_ops=4)
    resumed = run_tournament(seed=11, resume=report, **other)
    assert resumed["cache_hits"] == 0  # stale cache must not be trusted


# ----------------------------------------------------------------------
# bug rediscovery (the acceptance criterion)
# ----------------------------------------------------------------------
def test_rediscovers_vid_reuse_bug_and_shrinks():
    with vid_reuse_bug():
        report = run_tournament(seed=5, n=6, population=4, generations=4,
                                plan_ops=6, allow=CHURN_OPS,
                                event_budget=100_000, settle=1.5,
                                shrink_runs=64)
        assert report["found"]
        assert report["best"]["violations"]
        assert report["minimized"] is not None
        minimized = FaultPlan.from_dict(report["minimized"])
        assert len(minimized) <= len(report["best"]["plan"]["ops"])
        # the published counterexample replays from scratch
        violations, _engine = run_plan(minimized, settle=1.5,
                                       event_budget=100_000,
                                       measure_recovery=True)
        assert violations == report["minimized_violations"]
    # ... and the fix (flag back on) kills it
    violations, _engine = run_plan(minimized, settle=1.5,
                                   event_budget=100_000,
                                   measure_recovery=True)
    assert not violations


def test_rediscovers_self_delivery_livelock_and_shrinks():
    with livelock_bug():
        report = run_tournament(seed=1, n=5, population=2, generations=2,
                                plan_ops=4,
                                allow=("cast", "run", "crash", "leave",
                                       "join"),
                                event_budget=20_000, settle=1.0,
                                shrink_runs=16)
        assert report["found"]
        assert report["best"]["stalled"]
        assert report["minimized"] is not None
        minimized = FaultPlan.from_dict(report["minimized"])
        _violations, engine = run_plan(minimized, settle=1.0,
                                       event_budget=20_000,
                                       measure_recovery=True)
        assert engine.stalled
    # with the fixes restored the same plan runs to quiescence
    violations, engine = run_plan(minimized, settle=1.0,
                                  event_budget=20_000,
                                  measure_recovery=True)
    assert not violations and not engine.stalled


def test_known_counterexamples_stay_fixed():
    """The two historical minimal plans pass under the shipped defaults."""
    vid_plan = FaultPlan(seed=14, n=6, ops=[["leave", 5], ["leave", 2]])
    violations, _engine = run_plan(vid_plan, settle=2.0)
    assert not violations
    livelock_plan = FaultPlan(seed=9, n=4,
                              ops=[["cast", 0, 8], ["crash", 3],
                                   ["run", 2.0]])
    violations, engine = run_plan(livelock_plan, settle=2.0,
                                  event_budget=300_000)
    assert not violations and not engine.stalled
