"""Property-based tests for the MANET substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adhoc.geometry import Field
from repro.adhoc.gossip_stability import simulate_convergence
from repro.adhoc.routing import RouteTable

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                   allow_infinity=False)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(coords, coords), min_size=2, max_size=15,
                unique=True),
       st.floats(min_value=0.05, max_value=1.5))
def test_radio_graph_symmetric_and_selfless(points, radio_range):
    field = Field(radio_range=radio_range)
    for index, (x, y) in enumerate(points):
        field.place(index, x, y)
    adjacency = field.adjacency()
    for node, neighbors in adjacency.items():
        assert node not in neighbors
        for neighbor in neighbors:
            assert node in adjacency[neighbor]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(coords, coords), min_size=2, max_size=12,
                unique=True),
       st.floats(min_value=0.1, max_value=1.5))
def test_components_partition_the_nodes(points, radio_range):
    field = Field(radio_range=radio_range)
    for index, (x, y) in enumerate(points):
        field.place(index, x, y)
    components = field.components()
    union = set()
    for component in components:
        assert not (union & component), "components overlap"
        union |= component
    assert union == set(field.positions)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=4, max_value=12),
       st.integers(min_value=1, max_value=3))
def test_discovered_paths_are_valid_and_disjoint(seed, n, max_paths):
    rng = random.Random(seed)
    field = Field(radio_range=0.5)
    field.place_random(range(n), rng)
    routes = RouteTable(field, max_paths=max_paths)
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            paths = routes.paths(src, dst)
            hops_bfs = field.shortest_hops(src, dst)
            if hops_bfs is None:
                assert paths == []
                continue
            assert paths, "BFS reaches but discovery found nothing"
            interiors = []
            for path in paths:
                assert path[0] == src and path[-1] == dst
                assert len(set(path)) == len(path), "path has a loop"
                for a, b in zip(path, path[1:]):
                    assert field.in_range(a, b), "non-edge in path"
                interiors.append(set(path[1:-1]))
            # the first path is shortest
            assert len(paths[0]) - 1 == hops_bfs
            for i, a in enumerate(interiors):
                for b in interiors[i + 1:]:
                    assert not (a & b), "relays shared between paths"


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=4, max_value=40),
       st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=1, max_value=4))
def test_gossip_stability_always_converges(n, seed, fanout):
    result = simulate_convergence(n, seed=seed, fanout=fanout)
    assert result["converged"]
    assert result["rounds"] >= 1


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_drift_preserves_node_count(seed):
    rng = random.Random(seed)
    field = Field(radio_range=0.2)
    field.place_random(range(10), rng)
    before = set(field.positions)
    field.drift_random(rng, step=0.3)
    assert set(field.positions) == before
