"""True unit tests of individual layers using the stub harness.

The integration tests exercise the full stack; these poke single layers
with hand-crafted (including malformed and hostile) messages and observe
exactly what they emit -- edge cases that whole-cluster runs rarely hit.
"""

from tests.stubs import StubProcess, stub_for

from repro.core import message as mk
from repro.core.message import Message
from repro.layers.flow import FlowLayer
from repro.layers.fragment import FragmentLayer
from repro.layers.reliable import ReliableLayer
from repro.layers.suspicion import SuspicionLayer


def make_cast(process, origin, payload="x", size=16, msg_id=None):
    return Message(mk.KIND_CAST, origin, process.view.vid, payload, size,
                   msg_id=msg_id)


# ----------------------------------------------------------------------
# reliable layer
# ----------------------------------------------------------------------
def stream_msg(process, origin, seq, payload="x", stream="a"):
    msg = make_cast(process, origin, payload)
    msg.push_header("rel", (stream, seq))
    msg.sender = origin
    return msg


def test_reliable_out_of_order_buffered_then_drained():
    process = stub_for(ReliableLayer())
    process.feed_up(stream_msg(process, 1, 2, "second"))
    assert process.above.received_up == []
    process.feed_up(stream_msg(process, 1, 1, "first"))
    payloads = [m.payload for m in process.above.received_up]
    assert payloads == ["first", "second"]


def test_reliable_malformed_header_flagged():
    process = stub_for(ReliableLayer())
    msg = make_cast(process, 1)
    msg.push_header("rel", "not-a-tuple")
    msg.sender = 1
    process.feed_up(msg)
    assert process.verbose_detector.violations == 1
    assert process.above.received_up == []


def test_reliable_nonpositive_seq_flagged():
    process = stub_for(ReliableLayer())
    msg = make_cast(process, 1)
    msg.push_header("rel", ("a", 0))
    msg.sender = 1
    process.feed_up(msg)
    assert process.verbose_detector.violations == 1


def test_reliable_unknown_stream_flagged():
    process = stub_for(ReliableLayer())
    msg = make_cast(process, 1)
    msg.push_header("rel", ("z", 1))
    msg.sender = 1
    process.feed_up(msg)
    assert process.verbose_detector.violations == 1


def test_reliable_ack_for_unsent_flagged():
    process = stub_for(ReliableLayer())
    ack = Message(mk.KIND_ACK, 1, process.view.vid,
                  ((0, "a", 42),))  # we never sent 42 app messages
    ack.sender = 1
    process.feed_up(ack)
    assert process.verbose_detector.violations == 1


def test_reliable_bad_ack_entry_flagged():
    process = stub_for(ReliableLayer())
    ack = Message(mk.KIND_ACK, 1, process.view.vid,
                  ((0, "a", "NaN"),))
    ack.sender = 1
    process.feed_up(ack)
    assert process.verbose_detector.violations == 1


def test_reliable_nak_for_archived_message_served():
    process = stub_for(ReliableLayer())
    cast = make_cast(process, 0, "mine", msg_id=(0, 1))
    process.feed_down(cast)  # we sent it: archived
    nak = Message(mk.KIND_NAK, 2, process.view.vid, (0, "a", (1,)), dest=0)
    nak.sender = 2
    process.feed_up(nak)
    retrans = [m for m in process.below.received_down
               if m.kind == mk.KIND_RETRANS]
    assert len(retrans) == 1
    assert retrans[0].dest == 2
    assert retrans[0].payload[5] == "mine"  # archived payload travels


def test_reliable_nak_flood_rate_limited():
    process = stub_for(ReliableLayer())
    process.verbose_detector.set_rate_bound("rel:nak", max_count=3,
                                            window=1.0)
    for _ in range(6):
        nak = Message(mk.KIND_NAK, 2, process.view.vid, (0, "a", (1,)),
                      dest=0)
        nak.sender = 2
        process.feed_up(nak)
    assert process.verbose_levels.level(2) > 0


def test_reliable_wedge_blocks_app_but_not_ctl():
    process = stub_for(ReliableLayer())
    process.layer.wedge()
    process.feed_up(stream_msg(process, 1, 1, "app-blocked", stream="a"))
    ctl = Message(mk.KIND_CONSENSUS, 1, process.view.vid, ("x",))
    ctl.push_header("rel", ("c", 1))
    ctl.sender = 1
    process.feed_up(ctl)
    kinds = [m.kind for m in process.above.received_up]
    assert mk.KIND_CONSENSUS in kinds
    assert mk.KIND_CAST not in kinds


def test_reliable_cut_releases_exactly_up_to_cut():
    process = stub_for(ReliableLayer())
    process.layer.wedge()
    for seq in (1, 2, 3):
        process.feed_up(stream_msg(process, 1, seq, ("m", seq)))
    done = []
    process.layer.set_cut({1: 2}, on_complete=lambda: done.append(True))
    payloads = [m.payload for m in process.above.received_up]
    assert payloads == [("m", 1), ("m", 2)]  # seq 3 is beyond the cut
    assert done == [True]


# ----------------------------------------------------------------------
# fragment layer
# ----------------------------------------------------------------------
def test_fragment_bad_bounds_flagged():
    process = stub_for(FragmentLayer())
    msg = make_cast(process, 1)
    msg.push_header("frag", (5, 2, 100))  # index beyond count
    msg.sender = 1
    process.feed_up(msg)
    assert process.verbose_detector.violations == 1


def test_fragment_out_of_order_start_flagged():
    process = stub_for(FragmentLayer())
    msg = make_cast(process, 1)
    msg.push_header("frag", (1, 3, 4000))  # starts mid-message
    msg.sender = 1
    process.feed_up(msg)
    assert process.verbose_detector.violations == 1


def test_fragment_inconsistent_totals_reset_assembly():
    process = stub_for(FragmentLayer())
    first = make_cast(process, 1)
    first.push_header("frag", (0, 3, 4000))
    first.sender = 1
    process.feed_up(first)
    second = make_cast(process, 1)
    second.push_header("frag", (1, 4, 9999))  # count changed mid-flight
    second.sender = 1
    process.feed_up(second)
    assert process.verbose_detector.violations == 1
    assert process.above.received_up == []


def test_fragment_split_sizes_cover_total():
    process = stub_for(FragmentLayer())
    big = make_cast(process, 0, payload="big", size=3000)
    process.feed_down(big)
    frags = process.below.received_down
    assert len(frags) == 3  # ceil(3000/1400)
    assert sum(f.payload_size for f in frags) == 3000
    assert frags[-1].payload == "big"  # content rides the last fragment


# ----------------------------------------------------------------------
# flow layer
# ----------------------------------------------------------------------
def test_flow_passes_non_cast_traffic_untouched():
    process = stub_for(FlowLayer())
    ctl = Message(mk.KIND_CONSENSUS, 0, process.view.vid, ("x",))
    process.feed_down(ctl)
    assert process.below.received_down == [ctl]


def test_flow_window_closes_without_acks():
    config_kw = dict(flow_window=4)
    from repro.core.config import StackConfig
    process = StubProcess(FlowLayer(), config=StackConfig.byz(**config_kw))
    process.layer.start()
    for k in range(10):
        process.feed_down(make_cast(process, 0, ("w", k), msg_id=(0, k)))
    assert len(process.below.received_down) == 4
    assert process.layer.queued == 6
    # acks arrive: window reopens
    process.stability.on_ack(1, ((0, "a", 4),))
    process.stability.on_ack(2, ((0, "a", 4),))
    process.stability.on_ack(3, ((0, "a", 4),))
    process.stability.on_local_progress(((0, "a", 4),))
    assert len(process.below.received_down) == 8


# ----------------------------------------------------------------------
# suspicion layer
# ----------------------------------------------------------------------
def test_suspicion_local_threshold_triggers_slander():
    process = stub_for(SuspicionLayer())
    process.mute_levels.raise_level(2, 3.0)  # at the default threshold
    slanders = [m for m in process.below.received_down
                if m.kind == mk.KIND_SLANDER]
    assert len(slanders) == 1
    assert slanders[0].payload[0] == 2
    assert process.layer.is_suspected(2)


def test_suspicion_settle_timer_fires_change():
    process = stub_for(SuspicionLayer())
    fired = []
    original = process.stack.control

    def control(event, **data):
        fired.append(event)
        original(event, **data)
    process.stack.control = control
    process.mute_levels.raise_level(3, 5.0)
    process.run(0.1)
    assert "start-view-change" in fired


def test_suspicion_coordinator_suspect_fires_immediately():
    process = stub_for(SuspicionLayer())
    fired = []
    original = process.stack.control

    def control(event, **data):
        fired.append(event)
        original(event, **data)
    process.stack.control = control
    coordinator = process.view.coordinator
    process.mute_levels.raise_level(coordinator, 5.0)
    assert "start-view-change" in fired  # no settle delay


def test_suspicion_malformed_slander_flagged():
    process = stub_for(SuspicionLayer())
    bad = Message(mk.KIND_SLANDER, 1, process.view.vid, "garbage")
    bad.sender = 1
    process.feed_up(bad)
    assert process.verbose_detector.violations == 1


# ----------------------------------------------------------------------
# uniform delivery layer
# ----------------------------------------------------------------------
def uniform_stub():
    from repro.core.config import StackConfig
    from repro.layers.uniform_delivery import UniformDeliveryLayer
    process = StubProcess(UniformDeliveryLayer(),
                          members=tuple(range(8)),
                          config=StackConfig.byz(uniform_delivery=True))
    process.layer.start()
    return process


def test_uniform_holds_cast_until_agreement():
    process = uniform_stub()
    cast = make_cast(process, 1, ("u", 1), msg_id=(1, 1))
    process.feed_up(cast)
    assert process.above.received_up == []  # held: agreement pending
    # the quorum's echoes arrive (digest of OUR copy)
    from repro.layers.uniform_delivery import payload_digest
    digest = payload_digest(("u", 1))
    for sender in (2, 3, 4, 5, 6, 7):
        msg = Message("udeliv", sender, process.view.vid,
                      ("ub", (1, 1), ("ub-echo", digest)))
        msg.sender = sender
        process.feed_up(msg)
    assert [m.payload for m in process.above.received_up] == [("u", 1)]


def test_uniform_flush_timeout_drops_unresolved():
    process = uniform_stub()
    cast = make_cast(process, 1, ("stuck", 1), msg_id=(1, 1))
    process.feed_up(cast)
    done = []
    process.layer.flush(lambda: done.append(True))
    assert not done  # agreement still pending
    process.run(1.0)  # flush timeout expires
    assert done == [True]
    assert process.layer.dropped_unresolved == 1
    assert process.above.received_up == []


def test_uniform_serves_fetch_for_pending_copy():
    process = uniform_stub()
    cast = make_cast(process, 1, ("content", 9), msg_id=(1, 1))
    process.feed_up(cast)
    fetch = Message("udeliv", 3, process.view.vid, ("fetch", (1, 1), None),
                    dest=0)
    fetch.sender = 3
    process.feed_up(fetch)
    copies = [m for m in process.below.received_down
              if m.kind == "udeliv" and m.payload[0] == "copy"]
    assert len(copies) == 1
    assert copies[0].dest == 3
    assert copies[0].payload[2][0] == ("content", 9)


def test_uniform_garbage_proto_flagged():
    process = uniform_stub()
    bad = Message("udeliv", 2, process.view.vid, "garbage")
    bad.sender = 2
    process.feed_up(bad)
    assert process.verbose_detector.violations == 1
