"""Determinism: identical seeds must give byte-identical executions.

Every test and benchmark in the repository leans on this property; it is
what makes protocol bugs reproducible and the benchmark numbers stable.
"""

from tests.helpers import make_group

from repro import Group, StackConfig


def run_scenario(seed, total_order=False):
    group = make_group(6, seed=seed, total_order=total_order)
    for node in range(6):
        for k in range(4):
            group.endpoints[node].cast((node, k))
    group.run(0.1)
    group.crash(5)
    group.run_until(lambda: all(p.view.n == 5 for p in group.processes.values()
                                if not p.stopped), timeout=4.0)
    group.run(0.3)
    fingerprint = []
    for node in sorted(group.processes):
        history = group.processes[node].history
        fingerprint.append((node, tuple(map(repr, history.events))))
    return tuple(fingerprint), group.sim.events_processed


def test_same_seed_identical_histories():
    first, events_a = run_scenario(seed=1234)
    second, events_b = run_scenario(seed=1234)
    assert first == second
    assert events_a == events_b


def test_different_seed_different_timing():
    first, _ = run_scenario(seed=1)
    second, _ = run_scenario(seed=2)
    # payload sets coincide, but jitter makes event timings differ
    assert first != second


def test_same_seed_identical_with_total_order():
    first, _ = run_scenario(seed=77, total_order=True)
    second, _ = run_scenario(seed=77, total_order=True)
    assert first == second


def test_benchmark_runner_reproducible():
    from benchmarks.harness import ring_throughput
    config_a = StackConfig.byz()
    config_b = StackConfig.byz()
    r1 = ring_throughput(config_a, 8, seed=5)
    r2 = ring_throughput(config_b, 8, seed=5)
    assert r1["throughput"] == r2["throughput"]
