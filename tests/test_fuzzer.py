"""Scenario-fuzzing tests: random fault schedules must stay safe."""

import pytest

from repro import StackConfig
from repro.tools.fuzzer import ScenarioFuzzer, fuzz


def test_fuzz_traffic_and_crashes():
    failures = fuzz(range(4), ops=8,
                    allow=("cast_burst", "run", "crash", "leave"))
    assert not failures, failures


def test_fuzz_partitions_and_heals():
    failures = fuzz(range(4, 7), ops=8,
                    allow=("cast_burst", "run", "partition", "heal"))
    assert not failures, failures


def test_fuzz_with_joins():
    failures = fuzz(range(7, 9), ops=6,
                    allow=("cast_burst", "run", "join"))
    assert not failures, failures


def test_fuzz_everything_mixed():
    failures = fuzz(range(9, 13), ops=10)
    assert not failures, failures


@pytest.mark.parametrize("seed", [21, 22])
def test_fuzz_total_order_scenarios(seed):
    config = StackConfig.byz(total_order=True)
    fuzzer = ScenarioFuzzer(seed, config=config, ops=7,
                            allow=("cast_burst", "run", "crash"))
    fuzzer.execute()
    violations = fuzzer.check()
    assert not violations, (violations[:5], fuzzer.script)


def test_fuzzer_script_is_replayable():
    a = ScenarioFuzzer(99, ops=6).execute()
    b = ScenarioFuzzer(99, ops=6).execute()
    assert a.script == b.script
    assert a.check() == b.check()
