"""Tests for application events and per-process statistics."""

from tests.helpers import make_group

from repro.core.events import BlockEvent, CastDeliver, SendDeliver, ViewEvent
from repro.core.view import View, ViewId


def test_event_reprs_are_informative():
    view = View(ViewId(1, 0), (0, 1))
    assert "vid(1;0)" in repr(ViewEvent(0.5, view))
    assert "from=3" in repr(CastDeliver(0.5, 3, "p", ViewId(1, 0)))
    assert "from=2" in repr(SendDeliver(0.5, 2, "p", ViewId(1, 0)))
    assert "blocked=True" in repr(BlockEvent(0.5, True))


def test_events_carry_msg_ids_and_view_ids():
    group = make_group(3, seed=1)
    msg_id = group.endpoints[0].cast("x")
    group.run(0.2)
    deliveries = [e for e in group.endpoints[1].events
                  if type(e).__name__ == "CastDeliver"]
    assert deliveries[0].msg_id == msg_id
    assert deliveries[0].view_id == group.processes[1].view.vid
    assert deliveries[0].time <= group.sim.now


def test_per_layer_counters_accumulate():
    group = make_group(4, seed=2)
    for k in range(20):
        group.endpoints[0].cast(("c", k))
    group.run(0.5)
    p = group.processes[1]
    assert p.bottom.datagrams_in > 20
    assert p.bottom.messages_signed > 0       # acks/heartbeats at least
    assert p.top.delivered >= 20
    assert p.cpu.busy_accum > 0
    sender = group.processes[0]
    assert sender.top.casts_sent == 20


def test_signature_drop_counters_with_sym_crypto():
    from repro.core import message as mk
    from repro.core.message import Message
    group = make_group(4, seed=3, crypto="sym")
    group.run(0.05)
    process = group.processes[0]
    # inject a datagram with a junk signature straight into the bottom
    forged = Message(mk.KIND_CAST, 2, process.view.vid, "evil", 16,
                     msg_id=(2, 1))
    forged.push_header("rel", ("a", 1))
    forged.signature = {"not": "a mac"}
    forged.sender = 2
    before = process.bottom.dropped_bad_signature
    process.bottom._process_in(2, forged)
    assert process.bottom.dropped_bad_signature == before + 1
    # and the sender got flagged
    assert process.verbose_levels.level(2) > 0


def test_wrong_view_filter_counter():
    from repro.core import message as mk
    from repro.core.message import Message
    group = make_group(4, seed=4)
    group.run(0.05)
    process = group.processes[0]
    stale = Message(mk.KIND_CAST, 1, ViewId(99, 1), "old", 16)
    stale.push_header("rel", ("a", 1))
    stale.sender = 1
    before = process.bottom.dropped_wrong_view
    process.bottom._process_in(1, stale)
    assert process.bottom.dropped_wrong_view == before + 1


def test_impersonation_filter_counter():
    from repro.core import message as mk
    from repro.core.message import Message
    group = make_group(4, seed=5)
    group.run(0.05)
    process = group.processes[0]
    spoofed = Message(mk.KIND_CAST, 3, process.view.vid, "spoof", 16)
    spoofed.sender = 3          # claims to be 3...
    before = process.bottom.dropped_impersonation
    process.bottom._process_in(2, spoofed)   # ...but arrives from 2
    assert process.bottom.dropped_impersonation == before + 1
