"""Additional edge-case coverage across modules."""

from tests.helpers import cast_payloads, make_group

from repro import Group, StackConfig
from repro.core.history import History, content_digest
from repro.core.view import ViewId


# ----------------------------------------------------------------------
# history accessors
# ----------------------------------------------------------------------
def test_history_accessors_direct():
    h = History("n")
    v1 = ViewId(1, "n")
    from repro.core.view import View
    h.record_view(0.0, View(v1, ("n", "m")))
    h.record_cast(0.1, ("n", 1), v1)
    h.record_cast_deliver(0.2, ("n", 1), "n", "payload", v1)
    h.record_send(0.3, "m", v1)
    h.record_send_deliver(0.4, "m", "reply", v1)
    assert h.view_ids() == [v1]
    assert h.casts_in_view(v1) == {("n", 1)}
    assert h.deliveries_in_view(v1) == {("n", 1)}
    assert h.delivery_order() == [("n", 1)]
    assert h.delivery_digests() == {("n", 1): content_digest("payload")}


def test_history_restamped_cast_counts_in_last_view_only():
    h = History("n")
    v1, v2 = ViewId(1, "n"), ViewId(2, "n")
    h.record_cast(0.1, ("n", 1), v1)
    h.record_cast(0.5, ("n", 1), v2)  # re-stamped across a view change
    assert h.casts_in_view(v1) == set()
    assert h.casts_in_view(v2) == {("n", 1)}


# ----------------------------------------------------------------------
# endpoint callback plumbing
# ----------------------------------------------------------------------
def test_send_callbacks_and_events():
    group = make_group(3, seed=41)
    seen = []
    group.endpoints[2].on_send = lambda ev: seen.append(
        (ev.origin, ev.payload))
    group.endpoints[0].send(2, ("direct", 1))
    group.run(0.2)
    assert seen == [(0, ("direct", 1))]


def test_view_callback_fires_for_bootstrap_and_changes():
    group = Group.bootstrap(4, config=StackConfig.byz(), seed=42,
                            start=False)
    views_seen = []
    group.endpoints[0].on_view = lambda ev: views_seen.append(ev.view.n)
    group.start()
    assert views_seen == [4]
    group.crash(3)
    group.run_until(lambda: group.endpoints[0].view.n == 3, timeout=5.0)
    assert views_seen == [4, 3]


# ----------------------------------------------------------------------
# explorer: wider vectors, more hostile origins
# ----------------------------------------------------------------------
def test_explorer_two_entry_vectors():
    from repro.tools.explorer import explore_consensus_agreement
    proposals = {0: (1, 0), 1: (0, 0), 2: (1, 0)}
    explorer = explore_consensus_agreement(3, 0, proposals, width=2,
                                           max_states=30_000)
    assert not explorer.violations
    assert explorer.terminal_states > 0


def test_explorer_two_faced_origin_five_nodes_partial_split():
    from repro.tools.explorer import explore_uniform_broadcast
    explorer = explore_uniform_broadcast(
        4, 0, two_faced={1: "A", 2: "B", 3: "A"}, max_states=50_000)
    assert not explorer.violations


# ----------------------------------------------------------------------
# ring app under ordered QoS
# ----------------------------------------------------------------------
def test_ring_runs_under_total_order():
    from repro.apps.ring import RingDemo
    group = make_group(5, seed=43, total_order=True)
    ring = RingDemo(group, burst=4)
    ring.start()
    group.run(0.4)
    assert ring.min_rounds_completed() >= 2


# ----------------------------------------------------------------------
# mixed QoS sanity: every config delivers the same payload set
# ----------------------------------------------------------------------
def test_all_configs_deliver_identical_sets():
    configs = {
        "benign": StackConfig.benign(),
        "byz": StackConfig.byz(),
        "sym": StackConfig.byz(crypto="sym"),
        "total": StackConfig.byz(total_order=True),
        "uniform": StackConfig.byz(uniform_delivery=True),
        "packed": StackConfig.byz(packing=True),
        "gossip": StackConfig.byz(ack_mode="gossip"),
    }
    expected = {(n, k) for n in range(5) for k in range(4)}
    for label, config in configs.items():
        group = Group.bootstrap(5, config=config, seed=44)
        for node in range(5):
            for k in range(4):
                group.endpoints[node].cast((node, k))
        group.run(1.2)
        for node in range(5):
            got = {p for p in cast_payloads(group.endpoints[node])
                   if isinstance(p, tuple) and len(p) == 2}
            assert got == expected, (label, node, len(got))
        group.stop()
