"""Unit tests for messages, headers, and stack configuration."""

import pytest

from repro.core import message as mk
from repro.core.config import StackConfig
from repro.core.message import Message
from repro.core.view import ViewId


def test_headers_push_pop():
    msg = Message(mk.KIND_CAST, 0, ViewId(1, 0), "data", 16)
    msg.push_header("rel", ("a", 7))
    assert msg.header("rel") == ("a", 7)
    assert msg.pop_header("rel") == ("a", 7)
    assert msg.header("rel") is None
    assert msg.pop_header("rel", "sentinel") == "sentinel"


def test_auth_content_covers_headers_and_payload():
    msg = Message(mk.KIND_CAST, 0, ViewId(1, 0), "data", 16)
    base = msg.auth_content()
    msg.push_header("rel", ("a", 1))
    with_header = msg.auth_content()
    assert base != with_header
    other = Message(mk.KIND_CAST, 0, ViewId(1, 0), "DATA", 16)
    assert other.auth_content() != base


def test_auth_content_stable_under_header_order():
    a = Message(mk.KIND_CAST, 0, ViewId(1, 0), "x", 4)
    a.push_header("h1", 1)
    a.push_header("h2", 2)
    b = Message(mk.KIND_CAST, 0, ViewId(1, 0), "x", 4)
    b.push_header("h2", 2)
    b.push_header("h1", 1)
    assert a.auth_content() == b.auth_content()


def test_wire_size_accounting():
    msg = Message(mk.KIND_CAST, 0, ViewId(1, 0), "data", 100)
    assert msg.wire_size(12, 10) == 8 + 100 + 12 + 10


def test_clone_for_is_independent():
    msg = Message(mk.KIND_CAST, 0, ViewId(1, 0), "data", 16, msg_id=(0, 1))
    msg.push_header("rel", ("a", 1))
    clone = msg.clone_for(3)
    clone.pop_header("rel")
    assert msg.header("rel") == ("a", 1)
    assert clone.dest == 3
    assert clone.msg_id == (0, 1)


# ----------------------------------------------------------------------
# StackConfig
# ----------------------------------------------------------------------
def test_preset_labels_match_paper_plot_lines():
    assert StackConfig.benign().label() == "JazzEns"
    assert StackConfig.byz().label() == "ByzEns+NoCrypto"
    assert StackConfig.byz(crypto="sym").label() == "ByzEns+SymCrypto"
    assert StackConfig.byz(crypto="pub").label() == "ByzEns+PubCrypto"
    assert StackConfig.byz(total_order=True).label() == "ByzEns+NoCrypto+Total"
    assert (StackConfig.byz(crypto="sym", uniform_delivery=True).label()
            == "ByzEns+SymCrypto+Uniform")
    assert (StackConfig.byz(total_order=True, uniform_delivery=True).label()
            == "ByzEns+NoCrypto+Total+Uniform")


def test_resilience_combines_protocol_bounds():
    config = StackConfig.byz()
    assert config.resilience(8) == 1      # min(consensus f=1, uniform f=1)
    assert config.resilience(13) == 1     # uniform bound binds before consensus
    assert config.resilience(14) == 2
    assert config.resilience(50) == 8
    assert config.resilience(6) == 0      # too small for any tolerance


def test_benign_stack_tolerates_no_byzantine():
    assert StackConfig.benign().resilience(50) == 0


def test_resilience_override_caps():
    assert StackConfig.byz(f_override=1).resilience(50) == 1
    assert StackConfig.byz(f_override=99).resilience(14) == 2


def test_bracha_uniform_protocol_changes_bound():
    two_step = StackConfig.byz(uniform_protocol="twostep")
    bracha = StackConfig.byz(uniform_protocol="bracha")
    # at n=7: Bracha allows f=1 (consensus caps it), 2-step does not
    assert bracha.resilience(7) == 1
    assert two_step.resilience(7) == 0


def test_clone_overrides():
    config = StackConfig.byz(crypto="sym")
    other = config.clone(total_order=True)
    assert other.crypto == "sym"
    assert other.total_order and not config.total_order
