"""Live resharding over the epoch seam, end to end on the simulator.

The tentpole's contract, exercised at the ``Cluster`` surface:

* the blocking ``Cluster.reshard(...)`` moves exactly the keys whose
  ring owner changed, retires the old epoch, and leaves every replica
  of every shard on one digest;
* client operations issued *during* a migration apply exactly once per
  key -- the stale/early/wait fences plus the ``op_results`` dedup
  table, not timing luck, carry linearizability across the seam;
* the resubmit-same-txid path survives a destination-shard view change
  mid-migration (the crash-the-submitter scenario from the cross-shard
  transfer tests, replayed against the epoch machinery);
* an abandoned coordinator's migration is adoptable: ``resume()``
  rebuilds the plan from the directory and finishes it idempotently.
"""

import pytest

from repro import Cluster, StackConfig
from repro.shard.chaos import check_key_conservation


def make_plane(shards, nodes_per_shard, seed=0, ring_shards=None):
    """A total-order cluster with ``shards`` built groups, the first
    ``ring_shards`` of them on the initial hash ring (the rest are the
    spare capacity a scale-out reshard grows onto)."""
    config = StackConfig.byz(total_order=True, crypto="none")
    cluster = Cluster.create(shards=shards, nodes_per_shard=nodes_per_shard,
                             config=config, seed=seed,
                             ring_shards=ring_shards)
    cluster.run_until_stable_views(10.0)
    return cluster


def pump_migration(cluster, coordinator, interval=0.4):
    """Poll the migration from a sim timer.

    Client ops advance the plane internally (``run_until`` inside
    ``ShardClient.op``), so without a timer the coordinator would only
    make progress between ops -- and an op fenced ``wait`` on an
    in-flight arc could never be released.  The timer makes migration
    progress genuinely concurrent with the client's view of time.
    """
    def tick():
        if coordinator.state == "migrating":
            coordinator.poll()
            cluster.sim.schedule(interval, tick)
    cluster.sim.schedule(interval, tick)


# ----------------------------------------------------------------------
# the blocking facade call
# ----------------------------------------------------------------------
def test_reshard_scale_out_moves_exactly_the_routing_delta():
    cluster = make_plane(4, 3, seed=1, ring_shards=2)
    rsm = cluster.sharded_rsm()
    client = rsm.client("seeder")
    keys = ["acct:%d" % i for i in range(40)]
    expected = {}
    for i, key in enumerate(keys):
        assert client.set(key, i)[0] == "ok"
        expected[key] = i
    before = {key: cluster.route(key) for key in keys}

    coordinator = cluster.reshard(shards=4)
    assert coordinator.state == "done"
    moved = [key for key in keys if cluster.route(key) != before[key]]
    assert moved, "a 2->4 scale-out must move some keys"
    metrics = coordinator.migration_metrics()
    assert metrics["keys_moved"] == len(moved)
    assert metrics["pairs_done"] == metrics["pairs"]
    assert metrics["finished_at"] is not None

    # old epoch retired, every key on its new owner with its old value
    assert cluster.directory.epochs() == (coordinator.epoch,)
    assert check_key_conservation(rsm, expected) == []
    for shard in range(4):
        cluster.run_until(
            lambda shard=shard: len(set(
                rsm.shard_digests(shard).values())) == 1, timeout=5.0)
        assert len(set(rsm.shard_digests(shard).values())) == 1
    cluster.stop()


def test_reshard_shrink_drains_keys_back():
    cluster = make_plane(3, 3, seed=2)
    rsm = cluster.sharded_rsm()
    client = rsm.client("drainer")
    expected = {}
    for i in range(24):
        key = "cold:%d" % i
        assert client.set(key, i * 10)[0] == "ok"
        expected[key] = i * 10

    coordinator = cluster.reshard(shards=1)
    assert coordinator.state == "done"
    # everything now lives on shard 0; the drained shards hold nothing
    assert check_key_conservation(rsm, expected) == []
    for shard in (1, 2):
        for machine in rsm.machines(shard):
            assert machine.data == {}
            assert machine.outbox == {}
    assert cluster.directory.ring().shards == 1
    cluster.stop()


def test_reshard_rejects_noop_and_overgrown_targets():
    cluster = make_plane(2, 3, seed=3)
    with pytest.raises(ValueError):
        cluster.resharder().start(shards=2)      # same ring: a caller bug
    with pytest.raises(ValueError):
        cluster.resharder().start(shards=5)      # only 2 groups built
    cluster.stop()


# ----------------------------------------------------------------------
# mid-migration linearizability (the satellite's core scenario)
# ----------------------------------------------------------------------
def test_concurrent_writes_during_migration_apply_exactly_once():
    """Increments driven THROUGH a live migration: every key's counter
    must equal the number of acknowledged increments -- a lost update
    reads low, a double-applied fenced retry reads high."""
    cluster = make_plane(4, 4, seed=5, ring_shards=2)
    rsm = cluster.sharded_rsm()
    client = rsm.client("lin", timeout=1.5, attempts=20)
    keys = ["ctr:%d" % i for i in range(16)]
    # seed every counter BEFORE the seam so the sealed outboxes carry
    # real keys -- the increments below then race the keys' own move
    for key in keys:
        assert client.set(key, 0)[0] == "ok"

    coordinator = cluster.resharder()
    pump_migration(cluster, coordinator)
    coordinator.start(shards=4)

    expected = {}
    states_seen = set()
    for round_no in range(3):
        for key in keys:
            status, result = client.incr(
                key, op_id=("lin", key, round_no))
            assert status == "ok", (key, round_no)
            expected[key] = expected.get(key, 0) + 1
            assert result == expected[key], (key, round_no, result)
            states_seen.add(coordinator.state)

    assert coordinator.run(timeout=30.0)
    cluster.run_until_stable_views(5.0)
    cluster.run(1.0)

    # the workload genuinely overlapped the migration and hit its fences
    assert "migrating" in states_seen
    assert sum(client.fences.values()) > 0, client.fences
    # exactly-once per key on the destination: counter == acks issued
    assert check_key_conservation(rsm, expected) == []
    for key in keys:
        assert rsm.get(key) == 3, key
    metrics = coordinator.migration_metrics()
    assert metrics["keys_moved"] > 0
    assert cluster.directory.epochs() == (coordinator.epoch,)
    cluster.stop()


def test_resubmit_same_op_id_survives_mid_migration_view_change():
    """The resubmit-same-txid path across a view change: the serving
    shard loses a member while the migration is in flight, the client
    rides fences and timeouts with ONE op id, and the increment lands
    exactly once on the destination shard."""
    cluster = make_plane(2, 4, seed=7, ring_shards=1)
    rsm = cluster.sharded_rsm()
    # fenced attempts are cheap (the verdict lands in a fraction of a
    # second), but the budget must span the destination shard's whole
    # view change, during which every attempt fences "early"
    client = rsm.client("vc", timeout=1.5, attempts=80)

    coordinator = cluster.resharder()
    pump_migration(cluster, coordinator)
    coordinator.start(shards=2)
    # a key the new ring hands to the destination shard
    key = next("mv:%d" % i for i in range(10000)
               if cluster.directory.route("mv:%d" % i,
                                          coordinator.epoch) == 1)

    # the destination shard loses its lowest member mid-migration: its
    # mig_begin/install must ride out the flush + view change
    dst_group = cluster.shard_group(1)
    victim = min(dst_group.processes)
    dst_group.crash(victim)

    op_id = ("vc", key)
    status, result = client.op(key, ("incr", key, 1), op_id=op_id)
    assert status == "ok"
    assert result == 1

    # blind replay of the SAME op id: dedup returns the recorded result,
    # the counter does not move
    replay_status, replay_result = client.op(key, ("incr", key, 1),
                                             op_id=op_id)
    assert (replay_status, replay_result) == ("ok", 1)

    assert coordinator.run(timeout=30.0)
    cluster.run_until(
        lambda: all(p.view.n == 3 for p in dst_group.processes.values()
                    if not p.stopped), timeout=8.0)
    cluster.run(1.0)
    assert rsm.get(key) == 1
    # the op record migrated WITH the key: it lives on the destination,
    # and only there
    holders = [shard for shard in (0, 1)
               if any(op_id in m.op_results for m in rsm.machines(shard))]
    assert holders == [1]
    assert check_key_conservation(rsm, {key: 1}) == []
    cluster.stop()


# ----------------------------------------------------------------------
# coordinator hand-off
# ----------------------------------------------------------------------
def test_abandoned_migration_is_resumable_by_a_fresh_coordinator():
    cluster = make_plane(3, 3, seed=11, ring_shards=2)
    rsm = cluster.sharded_rsm()
    client = rsm.client("handoff")
    expected = {}
    for i in range(20):
        key = "h:%d" % i
        assert client.set(key, i)[0] == "ok"
        expected[key] = i

    first = cluster.resharder()
    first.start(shards=3)
    cluster.run(0.5)          # mig_begins in flight, then the
    first.poll()              # coordinator "crashes" (is abandoned)
    assert first.state == "migrating"

    second = cluster.resharder()
    with pytest.raises(ValueError):
        # epoch e+1 is already installed, so "start the same reshard"
        # reads as a no-op target; adoption goes through resume()
        second.start(shards=3)
    adopted_epoch = second.resume()
    assert adopted_epoch == first.epoch
    assert second.run(timeout=30.0)
    assert second.state == "done"
    assert cluster.directory.epochs() == (adopted_epoch,)
    assert check_key_conservation(rsm, expected) == []
    cluster.stop()
