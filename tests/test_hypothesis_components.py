"""Property-based tests for core data structures and stack components."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import content_digest
from repro.core.view import View, ViewId, choose_coordinator
from repro.crypto.auth import PairwiseSymmetricAuth, stable_bytes
from repro.crypto.cost import CryptoCostModel
from repro.crypto.keys import KeyManager
from repro.detectors.fuzzy import FuzzyLevels
from repro.sim.scheduler import Simulator

node_ids = st.one_of(st.integers(min_value=0, max_value=99),
                     st.text(min_size=1, max_size=5))


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 1000), node_ids, st.integers(0, 1000), node_ids)
def test_view_id_ordering_is_total_and_antisymmetric(c1, n1, c2, n2):
    a, b = ViewId(c1, n1), ViewId(c2, n2)
    assert (a < b) or (b < a) or (a == b)
    assert not (a < b and b < a)
    if a == b:
        assert hash(a) == hash(b)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 10**6), node_ids)
def test_view_id_wire_round_trip(counter, creator):
    vid = ViewId(counter, creator)
    assert ViewId.from_wire(vid.to_wire()) == vid


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 500), min_size=1, max_size=20, unique=True),
       st.integers(0, 100))
def test_view_wire_round_trip_and_coordinator_membership(members, counter):
    coord = choose_coordinator(counter, members)
    assert coord in members
    view = View(ViewId(counter + 1, coord), members, coordinator=coord, f=0)
    again = View.from_wire(view.to_wire())
    assert again == view and again.coordinator == coord


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 1000), st.lists(st.integers(), min_size=1, max_size=10,
                                      unique=True))
def test_coordinator_choice_is_deterministic_and_fair(counter, members):
    a = choose_coordinator(counter, members)
    b = choose_coordinator(counter, tuple(members))
    assert a == b
    # full rotation touches every member exactly once
    coords = [choose_coordinator(c, members)
              for c in range(counter, counter + len(members))]
    assert sorted(coords, key=repr) == sorted(members, key=repr)


@settings(max_examples=30, deadline=None)
@given(node_ids, node_ids, st.binary(min_size=0, max_size=64))
def test_pairwise_macs_verify_iff_untampered(a, b, blob):
    keys = KeyManager()
    auth = PairwiseSymmetricAuth(keys, CryptoCostModel())
    if a == b:
        return
    sig, _cost, _size = auth.sign(a, [b], blob)
    assert auth.verify(b, a, blob, sig)[0]
    assert not auth.verify(b, a, blob + b"x", sig)[0]


@settings(max_examples=50, deadline=None)
@given(st.tuples(st.integers(), st.text(max_size=10)),
       st.tuples(st.integers(), st.text(max_size=10)))
def test_stable_bytes_and_digest_injective_on_simple_payloads(p1, p2):
    if p1 == p2:
        assert stable_bytes(p1) == stable_bytes(p2)
        assert content_digest(p1) == content_digest(p2)
    else:
        assert stable_bytes(p1) != stable_bytes(p2)
        assert content_digest(p1) != content_digest(p2)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(node_ids, st.floats(min_value=0.1, max_value=5.0)),
                min_size=1, max_size=30))
def test_fuzzy_levels_nonnegative_and_bounded_by_total_raise(raises):
    sim = Simulator()
    levels = FuzzyLevels(sim, "mute", decay_interval=0.1, decay_amount=1.0)
    totals = {}
    for member, amount in raises:
        levels.raise_level(member, amount)
        totals[member] = totals.get(member, 0.0) + amount
    for member, total in totals.items():
        assert 0.0 <= levels.level(member) <= total + 1e-9
    # aging strictly reduces every level
    before = levels.snapshot()
    sim.run(until=0.15)
    for member, level in levels.snapshot().items():
        assert level < before[member]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=1000),
       st.integers(min_value=0, max_value=2**31))
def test_fragmentation_arithmetic_covers_payload(total, mtu_seed):
    mtu = 1 + mtu_seed % 1400
    count = -(-total // mtu)
    sizes = [mtu] * (count - 1) + [total - mtu * (count - 1)]
    assert sum(sizes) == total
    assert all(0 < s <= mtu for s in sizes)
