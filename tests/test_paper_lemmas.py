"""The paper's formal claims, as executable tests.

Each test carries the statement of one lemma/theorem from sections 3.4.1
and 3.4.3 and checks it on the implementation -- under randomized
schedules here, and (for the small cases) exhaustively in test_tools.py.
"""

import random

from repro.broadcast.uniform import UniformBroadcast
from repro.consensus.interface import max_f_consensus
from repro.consensus.vector import VectorConsensus
from repro.sim.scheduler import Simulator


class Net:
    """Message bus with per-sender twisting (for Byzantine senders)."""

    def __init__(self, n, seed=0):
        self.sim = Simulator(seed=seed)
        self.members = list(range(n))
        self.instances = {}
        self.twist = {}

    def bcast_from(self, sender):
        def bcast(payload):
            for receiver in self.members:
                if receiver == sender:
                    continue
                out = payload
                twist = self.twist.get(sender)
                if twist is not None:
                    out = twist(receiver, payload)
                    if out is None:
                        continue
                self.sim.schedule(0.001 + self.sim.rng.random() * 0.002,
                                  lambda r=receiver, s=sender, p=out:
                                  self.instances[r].on_message(s, p))
        return bcast

    def run(self):
        self.sim.run(max_events=2_000_000)


def build_consensus(net, f, proposals, suspected=frozenset()):
    decisions = {}
    for i in net.members:
        net.instances[i] = VectorConsensus(
            "L", net.members, i, f, proposals[i], net.bcast_from(i),
            is_suspected=lambda m: m in suspected,
            on_decide=lambda v, i=i: decisions.__setitem__(i, v))
    for i in net.members:
        if i not in suspected:
            net.instances[i].start()
    return decisions


def test_lemma_3_1_unanimous_estimates_never_change():
    """Lemma 3.1 (n > 4f): if at the beginning of a round all core
    processes share the estimate v[k], they never change it."""
    n, f = 13, 2
    # entry 0 unanimous; entry 1 contested so the protocol runs >1 round
    proposals = {i: (7, i % 2) for i in range(n)}
    net = Net(n, seed=1)
    decisions = build_consensus(net, f, proposals)
    net.run()
    assert len(decisions) == n
    for vec in decisions.values():
        assert vec[0] == 7  # the unanimous entry survived every round


def test_lemma_3_2_validity():
    """Lemma 3.2: if all core processes propose v[k], nothing else can be
    decided for entry k."""
    n, f = 13, 2
    for seed in range(3):
        proposals = {i: ("keep", random.Random(seed * 100 + i).randint(0, 1))
                     for i in range(n)}
        net = Net(n, seed=seed)
        decisions = build_consensus(net, f, proposals)
        net.run()
        assert all(vec[0] == "keep" for vec in decisions.values())


def test_lemma_3_3_agreement_with_byzantine_equivocator():
    """Lemma 3.3 (n > 6f): no two core processes decide differently --
    here with a Byzantine member sending different estimates to different
    peers."""
    n, f = 13, 2
    villain = 12
    proposals = {i: (i % 2,) for i in range(n)}
    net = Net(n, seed=3)

    def twist(receiver, payload):
        if payload[0] == "val":
            return ("val", payload[1], (receiver % 2,))  # two-faced
        return payload
    net.twist[villain] = twist
    decisions = build_consensus(net, f, proposals)
    net.run()
    core = [i for i in range(n) if i != villain]
    assert all(i in decisions for i in core)
    assert len({decisions[i] for i in core}) == 1


def test_lemma_3_4_no_core_process_blocks_forever():
    """Lemma 3.4: with at most f non-core members (silent here) and a
    complete failure detector, no core process blocks in a round."""
    n, f = 13, 2
    silent = frozenset({11, 12})
    proposals = {i: (i % 3,) for i in range(n)}
    net = Net(n, seed=4)
    decisions = build_consensus(net, f, proposals, suspected=silent)
    net.run()
    core = [i for i in range(n) if i not in silent]
    assert all(i in decisions for i in core)  # nobody blocked


def test_theorem_3_6_full_vector_consensus():
    """Theorem 3.6: validity + agreement + termination on whole vectors."""
    n, f = 13, 2
    proposals = {i: tuple((i + k) % 2 for k in range(n)) for i in range(n)}
    net = Net(n, seed=5)
    decisions = build_consensus(net, f, proposals)
    net.run()
    assert len(decisions) == n
    vecs = set(decisions.values())
    assert len(vecs) == 1
    decided = vecs.pop()
    for k in range(n):
        assert decided[k] in {proposals[i][k] for i in range(n)}


def build_ub(net, f, origin):
    delivered = {}
    for i in net.members:
        net.instances[i] = UniformBroadcast(
            ("L", 0), net.members, i, f, origin, net.bcast_from(i),
            on_deliver=lambda v, i=i: delivered.__setitem__(i, v))
    return delivered


def test_lemma_3_7_no_two_core_processes_deliver_differently():
    """Lemma 3.7: even a two-faced origin cannot split delivery."""
    n, f = 14, 2
    net = Net(n, seed=6)
    origin = 0

    def twist(receiver, payload):
        if payload[0] == "ub-initial":
            return ("ub-initial", "A" if receiver < n // 2 else "B")
        return payload
    net.twist[origin] = twist
    delivered = build_ub(net, f, origin)
    net.instances[origin].originate("A")
    net.run()
    core_values = {v for i, v in delivered.items() if i != origin}
    assert len(core_values) <= 1


def test_lemma_3_8_delivery_is_contagious():
    """Lemma 3.8: if one core process delivers v, every core process
    eventually delivers v -- even when the origin crashes right after a
    bare quorum of initial sends."""
    n, f = 14, 2
    net = Net(n, seed=7)
    origin = 0
    # the origin's initial reaches only a quorum-sized subset, then silence
    reach = set(range(1, int(n / 2.0 + f + 2)))

    def twist(receiver, payload):
        if payload[0] == "ub-initial" and receiver not in reach:
            return None
        return payload
    net.twist[origin] = twist
    delivered = build_ub(net, f, origin)
    net.instances[origin].originate("v")
    net.run()
    delivered_nodes = {i for i in delivered if i != origin}
    if delivered_nodes:  # if anyone delivered, everyone did
        assert delivered_nodes == set(range(1, n))


def test_lemma_3_9_core_sender_always_delivers():
    """Lemma 3.9: a correct origin's broadcast is delivered by every core
    process (liveness at the safe f bound, DESIGN.md deviation 1)."""
    n, f = 14, 2
    net = Net(n, seed=8)
    delivered = build_ub(net, f, origin=3)
    net.instances[3].originate("w")
    net.run()
    assert set(delivered) == set(range(n))
    assert set(delivered.values()) == {"w"}


def test_section_3_5_amortized_single_round_ordering():
    """Section 3.5: with deterministic batch choice under continuous load,
    consensus instances after the first decide in one round."""
    from repro import Group, StackConfig
    group = Group.bootstrap(7, config=StackConfig.byz(total_order=True),
                            seed=9)
    state = {"sent": 0}

    def pump():
        if state["sent"] < 120:
            for node in range(7):
                group.endpoints[node].cast((node, state["sent"]))
            state["sent"] += 1
            group.sim.schedule(0.002, pump)
    pump()
    group.run(1.2)
    ordering = group.processes[0].ordering
    assert ordering.batches_decided >= 3
    assert ordering.messages_ordered >= 7 * 100
