"""Sim-vs-wire conformance: the same workload on both runtime backends.

The whole point of the runtime seam (repro/runtime/) is that the
UNMODIFIED layer stack runs over real localhost UDP between real OS
processes.  These tests drive the same declarative
:class:`~repro.runtime.workload.NetWorkload` through both backends and
hold them to the same oracle:

* both satisfy the Definitions 2.1/2.2 virtual-synchrony checker,
* both converge every survivor onto one common final membership,
* both deliver each sender's casts in the same (FIFO) per-sender order,
* the asyncio cluster finishes within the ISSUE's 10 s wall budget,
* node teardown leaks nothing (no pending timers, sockets closed).

Everything here opens sockets and spawns processes, so the module is
``net``-marked and excluded from the default (tier-1) pytest run;
select it with ``pytest -m net``.
"""

from __future__ import annotations

import pytest

from repro.runtime.driver import run_net_workload
from repro.runtime.workload import NetWorkload, run_sim_workload

pytestmark = pytest.mark.net

#: the ISSUE's acceptance budget for the 5-node localhost cluster
NET_WALL_BUDGET = 10.0

BYZ = {"byzantine": True, "crypto": "sym"}
BENIGN = {"byzantine": False, "crypto": "none"}


def _assert_healthy(result, workload):
    __tracebackhint__ = True
    detail = {n: (r.ok, r.error, r.wall) for n, r in result.reports.items()}
    assert result.ok, (result.backend, detail, result.artifacts_dir)
    assert result.violations() == [], result.violations()
    common = result.common_final_members()
    assert common is not None, result.final_members()
    expected = set(range(workload.n))
    if workload.leaver is not None:
        expected.discard(workload.leaver)
    assert set(common) == expected


def _sender_orders_agree(sim, net, workload):
    """Every (observer, origin) pair delivered the same index sequence."""
    sim_orders = sim.per_sender_orders()
    net_orders = net.per_sender_orders()
    assert set(sim_orders) == set(net_orders)
    full = list(range(workload.casts_per_node))
    for node in sim_orders:
        assert sim_orders[node] == net_orders[node], (
            node, sim_orders[node], net_orders[node])
        for origin, indices in sim_orders[node].items():
            assert indices == full, (node, origin, indices)


def test_conformance_join_multicast_leave():
    """The headline check: 5 nodes, everyone casts, node 4 leaves --
    identical outcome on the simulator and on the localhost wire."""
    workload = NetWorkload(n=5, casts_per_node=3, leaver=4)
    sim = run_sim_workload(workload, seed=1)
    net = run_net_workload(workload, seed=1, config=BYZ,
                           wall_timeout=NET_WALL_BUDGET)
    _assert_healthy(sim, workload)
    _assert_healthy(net, workload)
    assert net.elapsed <= NET_WALL_BUDGET
    _sender_orders_agree(sim, net, workload)


def test_conformance_no_leave_benign():
    workload = NetWorkload(n=5, casts_per_node=3, leaver=None)
    sim = run_sim_workload(workload, seed=2,
                           config=_benign_stack_config())
    net = run_net_workload(workload, seed=2, config=BENIGN,
                           wall_timeout=NET_WALL_BUDGET)
    _assert_healthy(sim, workload)
    _assert_healthy(net, workload)
    _sender_orders_agree(sim, net, workload)


def test_net_smoke_byzantine_config():
    """ISSUE acceptance: 5-node byz+sym cluster forms a common view and
    delivers all ordered multicasts within the 10 s wall budget."""
    workload = NetWorkload(n=5, casts_per_node=3, leaver=None)
    net = run_net_workload(workload, seed=3, config=BYZ,
                           wall_timeout=NET_WALL_BUDGET)
    _assert_healthy(net, workload)
    assert net.elapsed <= NET_WALL_BUDGET
    total = net.workload.expected_deliveries
    for node, report in net.reports.items():
        assert report.wall["delivered"] == total, (node, report.wall)


def test_conformance_coalescing_off():
    """The wire coalescer is an optimization, not a protocol change: with
    ``wire_coalesce`` off the cluster must still converge and deliver in
    order -- emitting exactly one datagram per frame, where the coalesced
    run packs multiple frames per datagram."""
    workload = NetWorkload(n=5, casts_per_node=3, leaver=None)
    off = run_net_workload(workload, seed=6,
                           config=dict(BYZ, wire_coalesce=False),
                           wall_timeout=NET_WALL_BUDGET)
    _assert_healthy(off, workload)
    on = run_net_workload(workload, seed=6, config=BYZ,
                          wall_timeout=NET_WALL_BUDGET)
    _assert_healthy(on, workload)
    datagrams_off = sum(r.counters.get("datagrams_sent", 0)
                        for r in off.reports.values())
    frames_off = sum(r.counters.get("frames_sent", 0)
                     for r in off.reports.values())
    datagrams_on = sum(r.counters.get("datagrams_sent", 0)
                       for r in on.reports.values())
    frames_on = sum(r.counters.get("frames_sent", 0)
                    for r in on.reports.values())
    # per-run invariants, not a cross-run datagram-count comparison:
    # total chatter scales with how long each run happens to take (a
    # longer run emits more periodic acks/heartbeats), so raw counts
    # between two separately-timed real-network runs are noise
    assert datagrams_off == frames_off, (datagrams_off, frames_off)
    assert datagrams_on < frames_on, (datagrams_on, frames_on)


def test_net_teardown_releases_resources():
    """Satellite: GroupProcess.stop + runtime close leave no pending
    asyncio timers and close the UDP socket on every node."""
    workload = NetWorkload(n=3, casts_per_node=2, leaver=None)
    net = run_net_workload(workload, seed=4, config=BYZ,
                           wall_timeout=NET_WALL_BUDGET)
    _assert_healthy(net, workload)
    for node, report in net.reports.items():
        assert report.leaks.get("pending_timers") == 0, (node, report.leaks)
        assert report.leaks.get("clock_closed") is True, (node, report.leaks)
        assert report.leaks.get("socket_closed") is True, (node, report.leaks)


def test_net_artifacts_on_failure(tmp_path):
    """An impossible deadline must fail loudly AND leave the artifacts
    (specs, reports, logs) behind for CI to upload."""
    workload = NetWorkload(n=3, casts_per_node=2, leaver=None,
                           deadline=0.0, linger=0.0)
    net = run_net_workload(workload, seed=5, config=BYZ,
                           out_dir=str(tmp_path), wall_timeout=8.0)
    assert not net.ok
    assert net.artifacts_dir == str(tmp_path)
    assert (tmp_path / "node0.report.json").exists()
    assert (tmp_path / "node0.log").exists()


def _benign_stack_config():
    from repro.core.config import StackConfig
    return StackConfig.benign()
