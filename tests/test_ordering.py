"""Tests for total ordering via repeated Byzantine consensus (section 3.5)."""

from tests.helpers import cast_ids, cast_payloads, make_group

from repro import Group, StackConfig
from repro.core.properties import check_total_order
from repro.sim.network import NetworkConfig


def test_all_nodes_deliver_identical_sequences():
    group = make_group(7, seed=1, total_order=True)
    for node in range(7):
        for k in range(6):
            group.endpoints[node].cast((node, k))
    group.run(1.5)
    sequences = {tuple(cast_ids(group.endpoints[n])) for n in range(7)}
    assert len(sequences) == 1
    assert len(sequences.pop()) == 42


def test_order_consistent_even_with_network_reordering():
    config = StackConfig.byz(total_order=True)
    group = Group.bootstrap(7, config=config, seed=2,
                            net_config=NetworkConfig(reorder_prob=0.2))
    for node in range(7):
        for k in range(4):
            group.endpoints[node].cast((node, k))
    group.run(2.0)
    assert not check_total_order(group.execution())
    counts = {len(cast_ids(group.endpoints[n])) for n in range(7)}
    assert counts == {28}


def test_per_sender_fifo_respected_inside_total_order():
    group = make_group(7, seed=3, total_order=True)
    for k in range(10):
        group.endpoints[2].cast(("s", k))
    group.run(1.0)
    for node in range(7):
        mine = [p for p in cast_payloads(group.endpoints[node])
                if isinstance(p, tuple) and p[0] == "s"]
        assert mine == [("s", k) for k in range(10)]


def test_steady_state_instances_decide_in_one_round():
    # continuous load: after the first instance, proposals coincide and
    # the amortized cost is one communication round (paper section 3.5)
    group = make_group(7, seed=4, total_order=True)
    # continuous traffic: re-cast on every delivery for a while
    state = {"sent": 0}

    def pump():
        if state["sent"] < 200:
            for node in range(7):
                group.endpoints[node].cast((node, state["sent"]))
            state["sent"] += 1
            group.sim.schedule(0.001, pump)

    pump()
    group.run(1.5)
    ordering = group.processes[0].ordering
    assert ordering.batches_decided >= 5
    # under continuous identical proposals, round count ~= instance count
    total_rounds = sum(1 for _ in range(1))  # placeholder for readability
    assert ordering.messages_ordered >= 7 * 150


def test_total_order_survives_crash_view_change():
    group = make_group(8, seed=5, total_order=True)
    for node in range(8):
        for k in range(3):
            group.endpoints[node].cast((node, "pre", k))
    group.run(0.3)
    group.crash(6)
    group.run_until(lambda: all(p.view.n == 7 for p in group.processes.values()
                                if not p.stopped), timeout=5.0)
    for node in range(6):
        group.endpoints[node].cast((node, "post", 0))
    group.run(1.0)
    execution = group.execution()
    execution.correct.discard(6)
    assert not check_total_order(execution)


def test_empty_batches_do_not_deliver_anything():
    group = make_group(7, seed=6, total_order=True)
    group.run(0.5)  # no traffic at all
    for node in range(7):
        assert cast_ids(group.endpoints[node]) == []
    assert group.processes[0].ordering.batches_decided == 0


def test_ordered_delivery_includes_own_messages():
    group = make_group(7, seed=7, total_order=True)
    group.endpoints[3].cast("mine")
    group.run(0.5)
    assert "mine" in cast_payloads(group.endpoints[3])
