"""Tests for the tooling: schedule explorer and ASCII charts."""

from repro.tools.ascii_chart import chart_block, render_chart
from repro.tools.explorer import (ScheduleExplorer,
                                  explore_consensus_agreement,
                                  explore_uniform_broadcast)


# ----------------------------------------------------------------------
# schedule explorer
# ----------------------------------------------------------------------
def test_explorer_finds_injected_violation():
    """Sanity: a deliberately unsafe 'protocol' is caught."""

    class Racy:
        def __init__(self, me, bus):
            self.me = me
            self.bus = bus
            self.decided = None

        def on_message(self, sender, payload):
            if self.decided is None:
                self.decided = payload  # adopt first arrival: unsafe

    def factory(bus):
        instances = {0: Racy(0, bus), 1: Racy(1, bus), 2: Racy(2, bus)}
        bus.send(0, 1, "a")
        bus.send(2, 1, "b")
        bus.send(0, 2, "a")
        bus.send(2, 2, "b")
        return instances

    def check(instances):
        decided = {i.decided for i in instances.values()
                   if i.decided is not None}
        if len(decided) > 1:
            return "split"
        return None

    explorer = ScheduleExplorer(factory, check)
    assert not explorer.run()
    assert explorer.violations
    assert explorer.terminal_states >= 1


def test_uniform_broadcast_safe_under_all_schedules():
    explorer = explore_uniform_broadcast(4, 0, max_states=60_000)
    assert not explorer.violations
    assert explorer.terminal_states > 0


def test_uniform_broadcast_two_faced_safe_under_all_schedules():
    # the origin shows half the group "A" and half "B"; no schedule may
    # split the correct members' deliveries
    explorer = explore_uniform_broadcast(
        5, 0, two_faced={1: "A", 2: "A", 3: "B", 4: "B"},
        max_states=60_000)
    assert not explorer.violations
    assert explorer.states_explored > 100


def test_consensus_agreement_under_all_schedules():
    proposals = {0: (1,), 1: (0,), 2: (1,), 3: (0,)}
    explorer = explore_consensus_agreement(4, 0, proposals,
                                           max_states=40_000)
    assert not explorer.violations
    assert explorer.states_explored > 100


def test_consensus_validity_under_all_schedules():
    proposals = {i: (1,) for i in range(3)}
    explorer = explore_consensus_agreement(3, 0, proposals,
                                           max_states=30_000)
    assert not explorer.violations
    assert explorer.terminal_states > 0


# ----------------------------------------------------------------------
# ascii charts
# ----------------------------------------------------------------------
def test_chart_renders_all_series_markers():
    series = {
        "up": [(0, 0.0), (10, 10.0)],
        "down": [(0, 10.0), (10, 0.0)],
    }
    lines = render_chart(series, width=30, height=8, title="t")
    text = "\n".join(lines)
    assert "t" == lines[0]
    assert "o up" in text and "x down" in text
    assert "o" in text and "x" in text


def test_chart_handles_nan_and_flat_series():
    series = {"flat": [(0, 5.0), (5, 5.0), (10, float("nan"))]}
    lines = render_chart(series, width=20, height=5)
    assert any("o" in line for line in lines)


def test_chart_empty_series():
    assert render_chart({"e": []}, title="none")[1] == "(no data)"


def test_chart_block_is_fenced():
    block = chart_block({"s": [(0, 1.0), (1, 2.0)]})
    assert block.startswith("```") and block.endswith("```")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_calibration_runs():
    from repro.__main__ import main
    assert main(["calibration", "--nodes", "16"]) == 0


def test_cli_demo_runs():
    from repro.__main__ import main
    assert main(["demo", "--nodes", "5", "--crypto", "none",
                 "--seed", "3"]) == 0


def test_cli_attack_unknown_scenario():
    from repro.__main__ import main
    assert main(["attack", "NotAScenario"]) == 2


# ----------------------------------------------------------------------
# timeline rendering
# ----------------------------------------------------------------------
def _small_run():
    from repro import Group, StackConfig
    group = Group.bootstrap(3, config=StackConfig.byz(), seed=9)
    group.endpoints[0].cast(("x", 1))
    group.run(0.2)
    return group


def test_timeline_globally_ordered():
    from repro.tools.timeline import merged_events
    group = _small_run()
    times = [t for t, _n, _k, _e in merged_events(group.execution())]
    assert times == sorted(times)
    assert times  # non-empty


def test_timeline_render_and_filters():
    from repro.tools.timeline import render_timeline
    group = _small_run()
    lines = render_timeline(group.execution(), kinds={"cast_deliver"})
    assert lines and all("deliver" in line for line in lines)
    limited = render_timeline(group.execution(), limit=2)
    assert len(limited) == 3 and "truncated" in limited[-1]


def test_view_summary_counts_match():
    from repro.tools.timeline import render_view_summary, view_summary
    group = _small_run()
    summary = view_summary(group.execution())
    vid = group.processes[0].view.vid
    assert summary[vid]["deliveries"] == {0: 1, 1: 1, 2: 1}
    assert sorted(summary[vid]["installed_by"]) == [0, 1, 2]
    assert render_view_summary(group.execution())


def test_explorer_benor_agreement_small():
    """Exhaustive schedules for the randomized consensus, deterministic
    coin: the protocol must agree under every delivery order."""
    from repro.consensus.benor import BenOrConsensus
    from repro.tools.explorer import ScheduleExplorer

    proposals = {0: 1, 1: 0, 2: 1}

    def factory(bus):
        instances = {}
        for i in range(3):
            instances[i] = BenOrConsensus(
                "b", list(range(3)), i, 0, proposals[i],
                lambda payload, i=i: bus.broadcast(i, payload),
                coin=lambda: 1)  # deterministic coin keeps the space finite

        def kickoff():
            for i in range(3):
                instances[i].start()
        return instances, kickoff

    def check(instances):
        decided = {i: inst.decision for i, inst in instances.items()
                   if inst.decided}
        if len(set(decided.values())) > 1:
            return "benor agreement violated: %r" % (decided,)
        return None

    explorer = ScheduleExplorer(factory, check, max_states=40_000,
                                max_inflight_choice=3)
    assert explorer.run(), explorer.violations
    assert explorer.states_explored > 50
