"""The tentpole's second backend: a live reshard over real localhost UDP.

The sim plane proves the migration protocol under deterministic chaos;
this module proves the SAME coordinator state machine and the same
fencing rules run on the asyncio backend -- wall clocks, real sockets,
one datagram per frame on the wire.  ``net``-marked (opens sockets), so
excluded from tier-1; select with ``pytest -m net``.
"""

from __future__ import annotations

import pytest

from repro.shard.netplane import run_reshard_conformance

pytestmark = pytest.mark.net

#: generous wall budget for a loaded CI host; the scenario runs in
#: well under a second on an idle machine
NET_WALL_BUDGET = 30.0


def test_net_backend_runs_a_migration_to_completion():
    report = run_reshard_conformance(shards=2, nodes_per_shard=3,
                                     ring_shards=1, keys=12, rounds=2,
                                     seed=1, wall_timeout=NET_WALL_BUDGET)
    assert report["ok"], report["violations"]
    migration = report["migration"]
    assert migration["state"] == "done"
    assert migration["from_shards"] == 1 and migration["to_shards"] == 2
    assert migration["keys_moved"] > 0
    assert migration["pairs_done"] == migration["pairs"]
    assert report["elapsed"] <= NET_WALL_BUDGET


def test_net_migration_fences_and_applies_exactly_once():
    """The concurrent write workload must observe the epoch seam (at
    least one fencing verdict) and still land every increment exactly
    once -- the conformance runner's conservation oracle asserts the
    values, this test asserts the seam was genuinely exercised."""
    report = run_reshard_conformance(shards=3, nodes_per_shard=3,
                                     ring_shards=2, keys=18, rounds=2,
                                     seed=5, wall_timeout=NET_WALL_BUDGET)
    assert report["ok"], report["violations"]
    fencing = report["migration"]["fencing"]
    assert sum(fencing.values()) > 0, fencing
