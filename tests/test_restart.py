"""Crash-recovery tests: restart with rejoin, stale-incarnation filtering,
and crash semantics of the timer plane (chaos-plane tentpole)."""

from tests.helpers import make_group

from repro.core import message as mk
from repro.core.message import Message
from repro.core.properties import check_virtual_synchrony


def _others_evicted(group, victim):
    return all(victim not in p.view.mbrs
               for node, p in group.processes.items()
               if node != victim and not p.stopped)


def _all_rejoined(group, n):
    return all(len(p.view.mbrs) == n for p in group.processes.values()
               if not p.stopped)


def test_crash_restart_rejoin_and_state_transfer():
    group = make_group(4, seed=7)
    snapshot = ("kv", (("balance", 111),), 1)
    for endpoint in group.endpoints.values():
        endpoint.state_provider = lambda: snapshot
    group.run(0.3)
    group.crash(3)
    assert group.run_until(lambda: _others_evicted(group, 3), timeout=5.0)

    endpoint = group.restart(3)
    installed = []
    endpoint.state_provider = lambda: ("empty",)
    endpoint.state_installer = installed.append
    assert group.run_until(lambda: _all_rejoined(group, 4), timeout=8.0)
    group.run(0.3)

    assert group.processes[3].incarnation == 1
    view = group.common_view()
    assert view is not None and set(view.mbrs) == {0, 1, 2, 3}
    # the snapshot reached the reincarnation through state transfer
    assert installed == [snapshot]
    assert group.processes[3].stack.layer("state_transfer").installed == 1
    # peers recorded the new incarnation once its first messages arrived
    assert any(p.bottom._peer_inc.get(3) == 1
               for node, p in group.processes.items() if node != 3)
    # the reincarnated member is held to the full Definition 2.1/2.2
    # contract -- no discard of node 3: its fresh history checks clean
    # (the retired incarnation's history sits in group.retired, outside
    # the execution)
    assert check_virtual_synchrony(group.execution()) == []
    assert group.retired and group.retired[0][:2] == (3, 0)


def test_restarted_node_reaches_steady_traffic():
    group = make_group(4, seed=11)
    for endpoint in group.endpoints.values():
        endpoint.state_provider = lambda: ("s",)
    group.run(0.2)
    group.crash(1)
    assert group.run_until(lambda: _others_evicted(group, 1), timeout=5.0)
    endpoint = group.restart(1)
    endpoint.state_provider = lambda: ("s",)
    assert group.run_until(lambda: _all_rejoined(group, 4), timeout=8.0)
    group.run(0.2)
    # the fresh incarnation can broadcast and everyone delivers
    endpoint.cast(("back", 1))
    assert group.run_until(
        lambda: all(any(e.payload == ("back", 1) for e in ep.events
                        if type(e).__name__ == "CastDeliver")
                    for ep in group.endpoints.values()), timeout=5.0)


def test_stale_incarnation_messages_filtered():
    """Bottom-layer unit test: a dead incarnation's stragglers are dropped."""
    group = make_group(4, seed=3)
    group.run(0.05)
    process = group.processes[0]
    bottom = process.bottom
    vid = process.view.vid

    fresh = Message(mk.KIND_CAST, 1, vid, ("new", 1), 16, msg_id=(1, 1))
    fresh.push_header("rel", ("a", 1))
    fresh.push_header("inc", 2)     # incarnation 2 of node 1 speaks first
    fresh.sender = 1
    bottom._process_in(1, fresh)
    assert bottom._peer_inc.get(1) == 2

    stale = Message(mk.KIND_CAST, 1, vid, ("old", 1), 16, msg_id=(1, 99))
    stale.push_header("rel", ("a", 99))
    stale.sender = 1                # no "inc" header => incarnation 0
    before_up = bottom.dropped_stale_incarnation
    bottom._process_in(1, stale)
    assert bottom.dropped_stale_incarnation == before_up + 1
    # the table survives view changes (a membership change must not
    # re-admit the dead incarnation)
    bottom.on_view(process.view)
    assert bottom._peer_inc.get(1) == 2


def test_first_boot_pushes_no_incarnation_header():
    """Wire compatibility: incarnation 0 adds no header, so seed-pinned
    runs without restarts are byte-identical to pre-chaos builds."""
    group = make_group(3, seed=5)
    group.endpoints[0].cast(("x",))
    group.run(0.2)
    delivered = [e for e in group.endpoints[1].events
                 if type(e).__name__ == "CastDeliver"]
    assert delivered
    assert all(p.incarnation == 0 for p in group.processes.values())
    assert all(p.bottom._peer_inc == {} for p in group.processes.values())


#: transient callbacks that may legitimately still sit in the heap at the
#: crash instant: in-flight datagram/CPU completions, all guarded by
#: ``process.stopped`` (or dropped by the crashed network port)
_TRANSIENT_OK = {"_process_in", "_process_pack_in", "_transmit",
                 "_accept_stream", "send"}


def _armed_victim_timers(group, victim, allow=()):
    process = group.processes[victim]
    owned = [process, process.stack, process.stability,
             process.mute_levels, process.verbose_levels,
             process.mute_detector, process.verbose_detector]
    owned.extend(process.stack.layers)
    if process.endpoint is not None:
        owned.append(process.endpoint)
    owned_ids = {id(component) for component in owned}
    hits = []
    for _deadline, _seq, timer in group.sim.timers():
        if timer.cancelled:
            continue
        callback = timer.callback
        owner = getattr(callback, "__self__", None)
        if owner is None or id(owner) not in owned_ids:
            continue
        if callback.__name__ in allow:
            continue
        hits.append(callback)
    return hits


def test_stop_cancels_all_pending_timers():
    """A crashed node's stack must not fire callbacks afterwards: every
    periodic/armed timer is cancelled at stop(), and whatever transient
    completions remain are guarded no-ops that never re-arm."""
    group = make_group(4, seed=9, total_order=True)
    for endpoint in group.endpoints.values():
        endpoint.cast(("warm", endpoint.node_id))
    group.run(0.3)
    victim = 2
    group.crash(victim)
    # immediately after the crash: nothing armed beyond guarded transients
    leftovers = _armed_victim_timers(group, victim, allow=_TRANSIENT_OK)
    assert leftovers == [], [cb.__qualname__ for cb in leftovers]
    # after the dust settles: nothing at all -- a transient that re-armed
    # a periodic timer into the dead stack would show up here
    group.run(0.5)
    leftovers = _armed_victim_timers(group, victim)
    assert leftovers == [], [cb.__qualname__ for cb in leftovers]
    # and the rest of the group reconfigured without the victim
    assert group.run_until(lambda: _others_evicted(group, victim),
                           timeout=5.0)
