"""Tests for the Byzantine virtual synchrony property checker itself.

The checker must catch synthetic violations (so a green run means
something) and pass hand-built legal histories.
"""

from repro.core.history import Execution, History, content_digest
from repro.core.properties import (check_content_agreement,
                                   check_delivery_agreement,
                                   check_fifo_no_holes,
                                   check_monotonic_view_ids,
                                   check_reliable_delivery,
                                   check_self_inclusion,
                                   check_sending_view_delivery,
                                   check_total_order, check_view_agreement,
                                   check_view_confirmation,
                                   check_view_synchrony,
                                   check_virtual_synchrony)
from repro.core.view import View, ViewId


def make_view(counter, members):
    return View(ViewId(counter, members[0]), members)


def record_view(history, t, counter, members):
    history.record_view(t, make_view(counter, members))


def test_self_inclusion_violation_detected():
    h = History("a")
    h.events.append(("view", 0.0, ViewId(1, "b"), ("b", "c")))
    execution = Execution({"a": h})
    assert check_self_inclusion(execution)


def test_self_inclusion_ok():
    h = History("a")
    record_view(h, 0.0, 1, ("a", "b"))
    assert not check_self_inclusion(Execution({"a": h}))


def test_monotonic_vid_violation():
    h = History("a")
    record_view(h, 0.0, 2, ("a",))
    record_view(h, 1.0, 1, ("a",))
    assert check_monotonic_view_ids(Execution({"a": h}))


def test_view_agreement_violation():
    ha, hb = History("a"), History("b")
    vid = ViewId(1, "a")
    ha.events.append(("view", 0.0, vid, ("a", "b")))
    hb.events.append(("view", 0.0, vid, ("a", "b", "c")))
    assert check_view_agreement(Execution({"a": ha, "b": hb}))


def test_view_agreement_ignores_byzantine_histories():
    ha, hb = History("a"), History("b")
    vid = ViewId(1, "a")
    ha.events.append(("view", 0.0, vid, ("a", "b")))
    hb.events.append(("view", 0.0, vid, ("a", "b", "c")))
    execution = Execution({"a": ha, "b": hb}, correct={"a"})
    assert not check_view_agreement(execution)


def test_view_confirmation_violation():
    # b appears in two consecutive views of a, but never installed the first
    ha, hb = History("a"), History("b")
    record_view(ha, 0.0, 1, ("a", "b"))
    record_view(ha, 1.0, 2, ("a", "b"))
    record_view(hb, 1.0, 2, ("a", "b"))  # skipped view 1
    violations = check_view_confirmation(Execution({"a": ha, "b": hb}))
    assert violations


def test_sending_view_violation():
    ha, hb = History("a"), History("b")
    v1, v2 = ViewId(1, "a"), ViewId(2, "a")
    ha.events.append(("view", 0.0, v1, ("a", "b")))
    ha.events.append(("cast", 0.1, ("a", 1), v1))
    hb.events.append(("view", 0.0, v2, ("a", "b")))
    hb.events.append(("cast_deliver", 0.2, ("a", 1), "a",
                      content_digest("x"), v2))
    assert check_sending_view_delivery(Execution({"a": ha, "b": hb}))


def test_reliable_delivery_violation():
    # a casts m in v1 and continues to v2; b installed both but missed m
    ha, hb = History("a"), History("b")
    v1, v2 = ViewId(1, "a"), ViewId(2, "a")
    for h in (ha, hb):
        h.events.append(("view", 0.0, v1, ("a", "b")))
    ha.events.append(("cast", 0.1, ("a", 1), v1))
    ha.events.append(("cast_deliver", 0.2, ("a", 1), "a",
                      content_digest("x"), v1))
    for h in (ha, hb):
        h.events.append(("view", 1.0, v2, ("a", "b")))
    assert check_reliable_delivery(Execution({"a": ha, "b": hb}))


def test_delivery_agreement_violation():
    ha, hb = History("a"), History("b")
    v1, v2 = ViewId(1, "a"), ViewId(2, "a")
    for h in (ha, hb):
        h.events.append(("view", 0.0, v1, ("a", "b")))
    ha.events.append(("cast_deliver", 0.2, ("c", 9), "c",
                      content_digest("x"), v1))
    for h in (ha, hb):
        h.events.append(("view", 1.0, v2, ("a", "b")))
    assert check_delivery_agreement(Execution({"a": ha, "b": hb}))


def test_fifo_hole_violation():
    ha = History("a")
    v1 = ViewId(1, "a")
    ha.events.append(("view", 0.0, v1, ("a", "b")))
    ha.events.append(("cast_deliver", 0.1, ("b", 1), "b",
                      content_digest("x"), v1))
    ha.events.append(("cast_deliver", 0.2, ("b", 3), "b",
                      content_digest("y"), v1))  # skipped counter 2
    execution = Execution({"a": ha, "b": History("b")})
    assert check_fifo_no_holes(execution)


def test_fifo_out_of_order_violation():
    ha = History("a")
    v1 = ViewId(1, "a")
    ha.events.append(("view", 0.0, v1, ("a", "b")))
    ha.events.append(("cast_deliver", 0.1, ("b", 2), "b",
                      content_digest("x"), v1))
    ha.events.append(("cast_deliver", 0.2, ("b", 1), "b",
                      content_digest("y"), v1))
    execution = Execution({"a": ha, "b": History("b")})
    assert check_fifo_no_holes(execution)


def test_fifo_ignores_byzantine_origins():
    ha = History("a")
    v1 = ViewId(1, "a")
    ha.events.append(("view", 0.0, v1, ("a", "b")))
    ha.events.append(("cast_deliver", 0.1, ("z", 5), "z",
                      content_digest("x"), v1))
    execution = Execution({"a": ha}, correct={"a"})
    assert not check_fifo_no_holes(execution)


def test_content_agreement_violation():
    ha, hb = History("a"), History("b")
    v1 = ViewId(1, "a")
    for h in (ha, hb):
        h.events.append(("view", 0.0, v1, ("a", "b")))
    ha.events.append(("cast_deliver", 0.1, ("z", 1), "z",
                      content_digest("version-1"), v1))
    hb.events.append(("cast_deliver", 0.1, ("z", 1), "z",
                      content_digest("version-2"), v1))
    assert check_content_agreement(Execution({"a": ha, "b": hb}))


def test_total_order_violation():
    ha, hb = History("a"), History("b")
    v1 = ViewId(1, "a")
    m1, m2 = ("a", 1), ("b", 1)
    for h, order in ((ha, (m1, m2)), (hb, (m2, m1))):
        h.events.append(("view", 0.0, v1, ("a", "b")))
        for i, m in enumerate(order):
            h.events.append(("cast_deliver", 0.1 + i / 10, m, m[0],
                             content_digest("x"), v1))
    assert check_total_order(Execution({"a": ha, "b": hb}))


def test_clean_execution_passes_everything():
    ha, hb = History("a"), History("b")
    v1, v2 = ViewId(1, "a"), ViewId(2, "a")
    m = ("a", 1)
    for h in (ha, hb):
        h.events.append(("view", 0.0, v1, ("a", "b")))
        h.events.append(("cast_deliver", 0.2, m, "a", content_digest("x"), v1))
    ha.events.append(("cast", 0.1, m, v1))
    for h in (ha, hb):
        h.events.append(("view", 1.0, v2, ("a", "b")))
    execution = Execution({"a": ha, "b": hb})
    assert not check_view_synchrony(execution)
    assert not check_virtual_synchrony(execution, content_agreement=True,
                                       total_order=True)


def test_duplicate_delivery_violation():
    from repro.core.properties import check_no_duplicate_delivery
    ha = History("a")
    v1 = ViewId(1, "a")
    ha.events.append(("view", 0.0, v1, ("a",)))
    for t in (0.1, 0.2):
        ha.events.append(("cast_deliver", t, ("b", 1), "b",
                          content_digest("x"), v1))
    assert check_no_duplicate_delivery(Execution({"a": ha}))


def test_self_delivery_violation():
    from repro.core.properties import check_self_delivery
    ha = History("a")
    v1, v2 = ViewId(1, "a"), ViewId(2, "a")
    ha.events.append(("view", 0.0, v1, ("a",)))
    ha.events.append(("cast", 0.1, ("a", 1), v1))
    ha.events.append(("view", 1.0, v2, ("a",)))  # moved on without delivering
    assert check_self_delivery(Execution({"a": ha}))
