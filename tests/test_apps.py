"""Tests for the bundled applications: Ring demo, RSM, replicated counter."""

import pytest

from tests.helpers import make_group

from repro import Group, StackConfig
from repro.apps.counter import ReplicatedCounter
from repro.apps.ring import RingDemo
from repro.apps.rsm import KVStore, Replica


# ----------------------------------------------------------------------
# Ring demo
# ----------------------------------------------------------------------
def test_ring_advances_rounds_and_measures_throughput():
    group = make_group(6, seed=1)
    ring = RingDemo(group, burst=4)
    ring.start()
    group.run(0.05)
    ring.start_measurement()
    group.run(0.1)
    ring.stop_measurement()
    assert ring.min_rounds_completed() > 5
    assert ring.throughput > 1000


def test_ring_latency_with_single_message_bursts():
    group = make_group(6, seed=2)
    ring = RingDemo(group, burst=1)
    ring.start()
    group.run(0.3)
    assert ring.latency.samples
    # LAN scale: sub-10ms as in the paper's Figure 6
    assert 0 < ring.latency.mean < 0.01


def test_ring_throughput_counts_broadcasts_not_deliveries():
    group = make_group(4, seed=3)
    ring = RingDemo(group, burst=2)
    ring.start()
    ring.start_measurement()
    group.run(0.1)
    ring.stop_measurement()
    # each broadcast delivered to n-1 remote nodes counts once
    assert ring.throughput == pytest.approx(
        ring._measured_deliveries / 3 / 0.1, rel=0.01)


# ----------------------------------------------------------------------
# replicated state machine
# ----------------------------------------------------------------------
def test_rsm_replicas_converge_to_same_state():
    group = make_group(7, seed=4, total_order=True)
    replicas = {n: Replica(group.endpoints[n]) for n in group.endpoints}
    replicas[0].submit(("set", "x", 1))
    replicas[1].submit(("incr", "y", 5))
    replicas[2].submit(("incr", "y", 7))
    replicas[3].submit(("append", "log", "a"))
    replicas[4].submit(("append", "log", "b"))
    group.run(1.0)
    digests = {r.state_digest() for r in replicas.values()}
    assert len(digests) == 1
    machine = replicas[0].machine
    assert machine.data["x"] == 1
    assert machine.data["y"] == 12
    assert set(machine.data["log"]) == {"a", "b"}


def test_rsm_logs_identical_across_replicas():
    group = make_group(7, seed=5, total_order=True)
    replicas = {n: Replica(group.endpoints[n]) for n in group.endpoints}
    for n in range(7):
        replicas[n].submit(("incr", "c", 1))
    group.run(1.0)
    logs = {tuple(r.log) for r in replicas.values()}
    assert len(logs) == 1
    assert replicas[0].machine.data["c"] == 7


def test_rsm_requires_total_order():
    group = make_group(4, seed=6)  # no total ordering
    with pytest.raises(ValueError):
        Replica(group.endpoints[0])


def test_kvstore_ignores_malformed_commands_deterministically():
    store = KVStore()
    store.apply(0, "not-a-tuple")
    store.apply(0, ())
    store.apply(0, ("set", "k"))      # wrong arity
    store.apply(0, ("incr", "k", "not-int"))
    assert store.data == {}


def test_kvstore_digest_reflects_state():
    a, b = KVStore(), KVStore()
    a.apply(0, ("set", "x", 1))
    b.apply(0, ("set", "x", 1))
    assert a.digest() == b.digest()
    b.apply(0, ("set", "x", 2))
    assert a.digest() != b.digest()


# ----------------------------------------------------------------------
# replicated counter
# ----------------------------------------------------------------------
def test_counters_converge_in_failure_free_run():
    group = make_group(5, seed=7)
    counters = {n: ReplicatedCounter(group.endpoints[n])
                for n in group.endpoints}
    for n in range(5):
        counters[n].increment(n + 1)
    group.run(0.5)
    assert {c.value for c in counters.values()} == {15}
    assert counters[0].per_origin == {n: n + 1 for n in range(5)}


def test_counters_agree_at_view_boundaries():
    group = make_group(6, seed=8)
    counters = {n: ReplicatedCounter(group.endpoints[n])
                for n in group.endpoints}
    for n in range(6):
        counters[n].increment(1)
    group.run(0.1)
    group.crash(5)
    group.run_until(lambda: all(p.view.n == 5 for p in group.processes.values()
                                if not p.stopped), timeout=5.0)
    group.run(0.2)
    # the snapshots taken when the post-crash view was installed must agree
    installs = {}
    for n in range(5):
        for vid, value in counters[n].view_snapshots:
            if vid.counter >= 2:
                installs.setdefault(vid, set()).add(value)
    assert installs
    for vid, values in installs.items():
        assert len(values) == 1, "divergent counters at %r" % vid


def test_counter_rejects_garbage_increments():
    group = make_group(4, seed=9)
    counters = {n: ReplicatedCounter(group.endpoints[n])
                for n in group.endpoints}
    group.endpoints[0].cast(("incr", "NaN"))
    group.endpoints[0].cast("garbage")
    counters[1].increment(2)
    group.run(0.3)
    assert all(c.value == 2 for c in counters.values())


def test_calibration_envelope_matches_paper_band():
    """Regression pin for the calibration: the benign stack's throughput
    at n=8 must stay inside the paper's 40-50k envelope (+/- slack)."""
    group = make_group(8, seed=30, **{})
    from repro import StackConfig
    from repro.apps.ring import RingDemo
    from repro import Group
    benign = Group.bootstrap(8, config=StackConfig.benign(), seed=30)
    ring = RingDemo(benign, burst=16)
    ring.start()
    benign.run(0.05)
    ring.start_measurement()
    benign.run(0.1)
    ring.stop_measurement()
    assert 35_000 < ring.throughput < 60_000, ring.throughput
