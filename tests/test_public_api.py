"""The public surface: ``repro.__all__`` and the docs/API.md snippets.

Two guarantees: every name the package advertises actually resolves, and
every ``python`` code block in docs/API.md executes as written (run in
order, in one shared namespace), so the documentation cannot drift from
the code.
"""

import os
import re

import pytest

import repro

DOCS_API = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "docs", "API.md")


def test_all_names_resolve():
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert missing == []


def test_all_is_sorted_and_unique():
    # keep the surface reviewable: sorted (dunders last), no duplicates
    names = list(repro.__all__)
    assert len(names) == len(set(names))
    public = [n for n in names if not n.startswith("_")]
    assert public == sorted(public)


def test_documented_surface_is_exported():
    # the names the quickstart and docs lean on, spelled out so an
    # accidental __all__ regression fails loudly with the missing name
    for name in ("Group", "GroupEndpoint", "StackConfig", "NetworkConfig",
                 "HostModel", "Field", "ObsConfig", "MetricsRegistry",
                 "MuteNode", "VerboseNode", "TwoFacedCaster",
                 "check_virtual_synchrony", "View", "ViewId",
                 "Cluster", "ShardManager", "ShardDirectory", "HashRing",
                 "ShardedRSM", "WireConfig", "ShardConfig", "ChaosConfig"):
        assert name in repro.__all__, name
        assert hasattr(repro, name), name


def _api_md_blocks():
    with open(DOCS_API) as handle:
        text = handle.read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_api_md_has_snippets():
    assert len(_api_md_blocks()) >= 5


def test_api_md_snippets_execute():
    blocks = _api_md_blocks()
    namespace = {}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, "docs/API.md block %d" % index, "exec"),
                 namespace)
        except Exception as exc:  # pragma: no cover - diagnostic path
            pytest.fail("docs/API.md block %d failed: %r\n%s"
                        % (index, exc, block))
