"""Unit tests for the BladeCenter topology quirks."""

from repro.sim.topology import BladeCenterTopology, FlatGigE, HostModel


def test_flat_topology_uniform_latency_and_private_nics():
    topo = FlatGigE(48)
    assert topo.latency(0, 47) == topo.latency(3, 4) == FlatGigE.base_latency
    assert len({topo.nic_id(i) for i in range(48)}) == 48


def test_small_blade_cluster_one_switch_no_extra_hop():
    topo = BladeCenterTopology(12)
    assert topo.latency(0, 11) == BladeCenterTopology.base_latency


def test_large_blade_cluster_crosses_two_switches():
    # above 12 nodes part of the communication crosses two switches
    topo = BladeCenterTopology(24)
    same_switch = topo.latency(0, 1)
    cross_switch = topo.latency(0, 23)
    assert cross_switch == same_switch + BladeCenterTopology.extra_switch_hop


def test_nic_private_up_to_24_nodes():
    topo = BladeCenterTopology(24)
    assert len({topo.nic_id(i) for i in range(24)}) == 24


def test_nic_shared_pairwise_above_24_nodes():
    # above 24 nodes two processes run per blade and share its NIC
    topo = BladeCenterTopology(32)
    assert topo.nic_id(0) == topo.nic_id(1)
    assert topo.nic_id(0) != topo.nic_id(2)
    assert len({topo.nic_id(i) for i in range(32)}) == 16


def test_shared_nic_pairs_share_switch():
    topo = BladeCenterTopology(48)
    # blade id determines the switch; both co-located processes match
    assert topo._switch(0) == topo._switch(1)


def test_describe_mentions_quirks():
    text = BladeCenterTopology(48).describe()
    assert "shared_nic=True" in text
    assert "two_switches=True" in text


def test_host_model_defaults_positive():
    host = HostModel()
    assert host.send_cpu > 0
    assert host.recv_cpu > 0
    assert host.byz_check_cpu > 0
