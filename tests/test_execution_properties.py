"""Whole-run property checks: Definitions 2.1/2.2 over simulated executions.

Each test runs a full cluster scenario (traffic, faults, view changes) and
asserts the recorded execution satisfies every safety clause.
"""

import pytest

from tests.helpers import make_group

from repro import Group, StackConfig
from repro.byzantine.behaviors import MuteNode, VerboseNode
from repro.core.properties import (check_view_synchrony,
                                   check_virtual_synchrony)
from repro.sim.network import NetworkConfig


def drive_traffic(group, casts_per_node=8, nodes=None):
    for node in (nodes if nodes is not None else group.endpoints):
        for k in range(casts_per_node):
            group.endpoints[node].cast((node, k))


def assert_clean(group, **kw):
    violations = check_virtual_synchrony(group.execution(), **kw)
    assert not violations, "\n".join(violations[:10])


def test_failure_free_run_is_virtually_synchronous():
    group = make_group(8, seed=1)
    drive_traffic(group)
    group.run(0.6)
    assert_clean(group)


def test_lossy_network_run_is_virtually_synchronous():
    config = StackConfig.byz()
    group = Group.bootstrap(6, config=config, seed=2,
                            net_config=NetworkConfig(drop_prob=0.1))
    drive_traffic(group, 6)
    group.run(2.0)
    assert_clean(group)


def test_crash_with_traffic_is_virtually_synchronous():
    group = make_group(8, seed=3)
    drive_traffic(group, 5)
    group.run(0.1)
    group.crash(6)
    group.run_until(lambda: all(p.view.n == 7 for p in group.processes.values()
                                if not p.stopped), timeout=5.0)
    drive_traffic(group, 3, nodes=[0, 1, 2])
    group.run(0.5)
    execution = group.execution()
    execution.correct.discard(6)  # crashed mid-run; only restrict survivors
    violations = check_virtual_synchrony(execution)
    assert not violations, "\n".join(violations[:10])


def test_leave_with_traffic_is_virtually_synchronous():
    group = make_group(7, seed=4)
    drive_traffic(group, 4)
    group.run(0.1)
    group.endpoints[2].leave()
    group.run_until(lambda: all(2 not in p.view.mbrs
                                for n, p in group.processes.items() if n != 2),
                    timeout=5.0)
    group.run(0.3)
    execution = group.execution()
    execution.correct.discard(2)
    violations = check_virtual_synchrony(execution)
    assert not violations, "\n".join(violations[:10])


def test_mute_byzantine_run_is_virtually_synchronous():
    group = make_group(8, seed=5, behaviors={5: MuteNode(mute_at=0.15)})
    drive_traffic(group, 4)
    group.run_until(lambda: all(5 not in p.view.mbrs
                                for n, p in group.processes.items()
                                if n != 5 and not p.stopped), timeout=6.0)
    drive_traffic(group, 2, nodes=[0, 1])
    group.run(0.5)
    assert_clean(group)


def test_verbose_byzantine_run_is_virtually_synchronous():
    group = make_group(8, seed=6,
                       behaviors={4: VerboseNode(start_at=0.05)})
    drive_traffic(group, 4)
    group.run(2.0)
    assert_clean(group)


def test_total_order_run_with_crash():
    group = make_group(8, seed=7, total_order=True)
    drive_traffic(group, 4)
    group.run(0.3)
    group.crash(3)
    group.run_until(lambda: all(p.view.n == 7 for p in group.processes.values()
                                if not p.stopped), timeout=6.0)
    drive_traffic(group, 2, nodes=[0, 1])
    group.run(1.0)
    execution = group.execution()
    execution.correct.discard(3)
    violations = check_virtual_synchrony(execution, content_agreement=True,
                                         total_order=True)
    assert not violations, "\n".join(violations[:10])


def test_uniform_delivery_run_properties():
    group = make_group(8, seed=8, uniform_delivery=True)
    drive_traffic(group, 4)
    group.run(1.5)
    assert_clean(group, content_agreement=True)


def test_partition_and_heal_views_are_synchronous():
    group = make_group(6, seed=9)
    drive_traffic(group, 3)
    group.run(0.1)
    group.partition({0, 1, 2}, {3, 4, 5})
    group.run_until(lambda: all(p.view.n == 3 for p in group.processes.values()),
                    timeout=6.0)
    group.heal()
    group.run_until(lambda: all(p.view.n == 6 for p in group.processes.values()),
                    timeout=10.0)
    group.run(0.3)
    violations = check_view_synchrony(group.execution())
    assert not violations, "\n".join(violations[:10])


def test_sym_crypto_run_is_virtually_synchronous():
    group = make_group(6, seed=10, crypto="sym")
    drive_traffic(group, 5)
    group.run(0.8)
    assert_clean(group)


def test_view_change_with_flow_backlog_loses_nothing():
    # small window so the flow queue is full when the view change hits;
    # queued casts must be re-stamped into the next view, not dropped
    group = make_group(6, seed=11, flow_window=8)
    for k in range(60):
        group.endpoints[0].cast(("bk", k))
    group.run(0.02)
    group.crash(5)
    group.run_until(lambda: all(p.view.n == 5 for p in group.processes.values()
                                if not p.stopped), timeout=5.0)
    group.run(1.5)
    for node in range(5):
        payloads = [e.payload for e in group.endpoints[node].events
                    if type(e).__name__ == "CastDeliver"
                    and isinstance(e.payload, tuple) and e.payload[0] == "bk"]
        assert payloads == [("bk", k) for k in range(60)], "node %d" % node
    assert_clean(group)


def test_def21_item4_connected_pair_eventually_share_views():
    # Def 2.1 item 4 (liveness): two correct nodes continuously connected
    # from some point on eventually appear in each other's views forever
    group = make_group(6, seed=12)
    group.run(0.05)
    group.partition({0, 1, 2}, {3, 4, 5})
    group.run_until(lambda: all(p.view.n == 3 for p in group.processes.values()),
                    timeout=6.0)
    group.heal()  # 0 and 5 are now continuously connected
    ok = group.run_until(
        lambda: 5 in group.processes[0].view.mbrs
        and 0 in group.processes[5].view.mbrs, timeout=10.0)
    assert ok
    # and it stays that way
    group.run(0.5)
    assert 5 in group.processes[0].view.mbrs
    assert 0 in group.processes[5].view.mbrs


def test_def21_item5_disconnected_node_eventually_excluded():
    # Def 2.1 item 5 (liveness): a permanently disconnected/crashed node
    # eventually vanishes from every correct node's views
    group = make_group(6, seed=13)
    group.run(0.05)
    group.partition(set(range(5)), {5})
    ok = group.run_until(
        lambda: all(5 not in p.view.mbrs
                    for n, p in group.processes.items() if n != 5),
        timeout=6.0)
    assert ok


def test_run_until_stable_views_helper():
    group = make_group(5, seed=14)
    group.crash(4)
    # let the churn run its course, then the helper reports stability
    group.run_until(lambda: all(p.view.n == 4
                                for p in group.processes.values()
                                if not p.stopped), timeout=6.0)
    assert group.run_until_stable_views(timeout=2.0)
    view = group.common_view()
    assert view is not None and view.n == 4
