"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Group, StackConfig


@pytest.fixture
def small_group():
    """An established 6-node Byzantine-hardened group."""
    group = Group.bootstrap(6, config=StackConfig.byz(), seed=42)
    yield group
    group.stop()
