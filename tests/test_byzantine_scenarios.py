"""The paper's Table 1 attack scenarios, end to end.

Each test injects one Byzantine behavior and asserts the group detects it,
recovers into a correct new view, and the execution satisfies the safety
properties throughout.
"""

from tests.helpers import make_group

from repro import Group, StackConfig
from repro.byzantine.behaviors import (BadViewCoordinator, MuteCoordinator,
                                       MuteNode, TwoFacedCaster, VerboseNode)
from repro.core.properties import check_view_synchrony


def excluded_everywhere(group, target):
    return all(target not in p.view.mbrs
               for n, p in group.processes.items()
               if n != target and not p.stopped)


def background_traffic(group, nodes, count=5):
    for node in nodes:
        for k in range(count):
            group.endpoints[node].cast((node, k))


def test_byz_mute_node_detected_and_removed():
    behaviors = {4: MuteNode(mute_at=0.1)}
    group = make_group(8, seed=1, behaviors=behaviors)
    background_traffic(group, (0, 1))
    ok = group.run_until(lambda: excluded_everywhere(group, 4), timeout=5.0)
    assert ok
    assert not check_view_synchrony(group.execution())


def test_byz_mute_coordinator_detected_and_removed():
    # node 1 is the initial coordinator (rotation at counter=1 of 8 members)
    group_probe = make_group(8, seed=0)
    coord = group_probe.processes[0].view.coordinator
    behaviors = {coord: MuteCoordinator(mute_at=0.1)}
    group = make_group(8, seed=2, behaviors=behaviors)
    assert group.processes[0].view.coordinator == coord
    ok = group.run_until(lambda: excluded_everywhere(group, coord),
                         timeout=5.0)
    assert ok
    new_view = group.common_view()
    assert new_view is not None
    assert new_view.coordinator != coord
    assert not check_view_synchrony(group.execution())


def test_byz_verbose_node_detected_and_removed():
    behaviors = {6: VerboseNode(start_at=0.05, interval=0.002)}
    group = make_group(8, seed=3, behaviors=behaviors)
    ok = group.run_until(lambda: excluded_everywhere(group, 6), timeout=5.0)
    assert ok
    # the slander flood may not evict any correct member
    view = group.common_view()
    assert view is not None
    assert set(view.mbrs) == {0, 1, 2, 3, 4, 5, 7}
    assert not check_view_synchrony(group.execution())


def test_coord_bad_view_rejected_and_coordinator_replaced():
    # make the *next* coordinator Byzantine: crash one node to trigger a
    # view change, whose generator then sends a wrong view
    probe = make_group(8, seed=0)
    survivors = [m for m in probe.processes[0].view.mbrs if m != 7]
    from repro.core.view import choose_coordinator
    bad_gen = choose_coordinator(1, survivors)
    behaviors = {bad_gen: BadViewCoordinator()}
    group = make_group(8, seed=4, behaviors=behaviors)
    group.run(0.05)
    group.crash(7)
    ok = group.run_until(
        lambda: all(7 not in p.view.mbrs and bad_gen not in p.view.mbrs
                    for n, p in group.processes.items()
                    if n not in (7, bad_gen) and not p.stopped),
        timeout=6.0)
    assert ok
    assert behaviors[bad_gen].corrupted > 0  # the attack actually fired
    assert not check_view_synchrony(group.execution())


def test_two_faced_caster_with_uniform_delivery_content_agreement():
    behaviors = {2: TwoFacedCaster()}
    config_kw = dict(uniform_delivery=True)
    group = make_group(8, seed=5, behaviors=behaviors, **config_kw)
    group.endpoints[2].cast(("two-faced", 1))
    background_traffic(group, (0, 1), count=3)
    group.run(1.5)
    # all correct nodes that delivered the Byzantine cast saw ONE version
    digests = {}
    for node, process in group.processes.items():
        if node == 2:
            continue
        for ev in process.history.events:
            if ev[0] == "cast_deliver" and ev[3] == 2:
                digests.setdefault(ev[2], set()).add(ev[4])
    for msg_id, versions in digests.items():
        assert len(versions) == 1, "split delivery of %r" % (msg_id,)


def test_two_faced_caster_with_total_order_content_agreement():
    behaviors = {2: TwoFacedCaster()}
    group = make_group(8, seed=6, behaviors=behaviors, total_order=True)
    group.endpoints[2].cast(("two-faced", 1))
    background_traffic(group, (0, 1), count=3)
    group.run(1.5)
    digests = {}
    for node, process in group.processes.items():
        if node == 2:
            continue
        for ev in process.history.events:
            if ev[0] == "cast_deliver" and ev[3] == 2:
                digests.setdefault(ev[2], set()).add(ev[4])
    assert digests, "nothing from the two-faced sender was delivered"
    for msg_id, versions in digests.items():
        assert len(versions) == 1


def test_verbose_node_cannot_evict_correct_member():
    # the whole point of f+1 slander adoption: one Byzantine slanderer is
    # not enough to remove anyone
    behaviors = {5: VerboseNode(start_at=0.02, interval=0.004)}
    group = make_group(8, seed=7, behaviors=behaviors)
    group.run(1.0)
    for node, process in group.processes.items():
        if node == 5 or process.stopped:
            continue
        assert set(process.view.mbrs) >= {0, 1, 2, 3, 4, 6, 7}, \
            "correct member evicted at %r" % node


def test_recovery_durations_are_subsecond():
    behaviors = {4: MuteNode(mute_at=0.1)}
    group = make_group(12, seed=8, behaviors=behaviors)
    group.run_until(lambda: excluded_everywhere(group, 4), timeout=6.0)
    durations = [p.membership.last_change_duration
                 for n, p in group.processes.items()
                 if n != 4 and p.membership.last_change_duration]
    assert durations
    assert max(durations) < 0.5


def test_two_simultaneous_byzantine_attackers_at_f2():
    # n=14 tolerates f=2 (both protocol bounds); two concurrent attackers
    # with different behaviours must both be excluded and no correct
    # member harmed
    behaviors = {12: MuteNode(mute_at=0.1),
                 13: VerboseNode(start_at=0.1, interval=0.003)}
    group = make_group(14, seed=9, behaviors=behaviors)
    assert group.processes[0].f == 2
    ok = group.run_until(
        lambda: all(12 not in p.view.mbrs and 13 not in p.view.mbrs
                    for n, p in group.processes.items()
                    if n not in (12, 13) and not p.stopped),
        timeout=8.0)
    assert ok
    view = group.common_view()
    assert view is not None
    assert set(view.mbrs) == set(range(12))
    assert not check_view_synchrony(group.execution())


def test_slow_node_neither_stalls_nor_gets_evicted():
    from repro.byzantine.behaviors import SlowNode
    # moderate slowness: under the mute timeout, so aging keeps the node
    # below the suspicion threshold while fuzzy flow ignores its lag
    behaviors = {6: SlowNode(delay=0.01, start_at=0.05)}
    group = make_group(8, seed=10, behaviors=behaviors)
    group.byzantine_nodes = set()  # slow, not faulty: it must stay correct
    sent = {"n": 0}

    def pump():
        if sent["n"] < 200:
            group.endpoints[0].cast(("s", sent["n"]))
            sent["n"] += 1
            group.sim.schedule(0.002, pump)
    pump()
    group.run(1.5)
    # the slow node stays a member...
    assert all(6 in p.view.mbrs for p in group.processes.values()
               if not p.stopped)
    # ...and the fast nodes' delivery kept pace
    fast = [e for e in group.endpoints[1].events
            if type(e).__name__ == "CastDeliver"
            and isinstance(e.payload, tuple) and e.payload[0] == "s"]
    assert len(fast) == 200
    assert behaviors[6].delayed > 0


def test_replayed_duplicates_are_absorbed():
    from repro.byzantine.behaviors import Replayer
    behaviors = {3: Replayer(replay_every=0.01)}
    group = make_group(6, seed=11, behaviors=behaviors)
    for k in range(10):
        group.endpoints[3].cast(("r", k))
    group.run(1.0)
    assert behaviors[3].replayed > 10
    for node in (0, 1, 2, 4, 5):
        payloads = [e.payload for e in group.endpoints[node].events
                    if type(e).__name__ == "CastDeliver"
                    and isinstance(e.payload, tuple) and e.payload[0] == "r"]
        assert payloads == [("r", k) for k in range(10)], "node %d" % node
