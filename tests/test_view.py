"""Unit tests for views and view identifiers."""

import pytest

from repro.core.view import (View, ViewId, choose_coordinator, singleton_view)


def test_view_ids_totally_ordered():
    assert ViewId(1, 0) < ViewId(2, 0)
    assert ViewId(1, 0) < ViewId(1, 5)   # tie broken by creator
    assert ViewId(3, 0) > ViewId(2, 99)
    assert ViewId(2, 1) == ViewId(2, 1)
    assert ViewId(2, 1) <= ViewId(2, 1)
    assert ViewId(2, 1) >= ViewId(2, 1)


def test_concurrent_views_have_distinct_ids():
    # two partitions bumping the counter independently still differ
    assert ViewId(5, 0) != ViewId(5, 3)


def test_view_id_hashable_and_wire_round_trip():
    vid = ViewId(7, "node-a")
    assert hash(vid) == hash(ViewId(7, "node-a"))
    assert ViewId.from_wire(vid.to_wire()) == vid


def test_view_id_from_bad_wire():
    with pytest.raises(ValueError):
        ViewId.from_wire(("vid", "not-int", 0))
    with pytest.raises(ValueError):
        ViewId.from_wire("garbage")


def test_view_basics():
    view = View(ViewId(1, 0), (0, 1, 2, 3), f=1)
    assert view.n == 4
    assert view.rank(2) == 2
    assert 3 in view
    assert 9 not in view


def test_view_rejects_duplicates_and_foreign_coordinator():
    with pytest.raises(ValueError):
        View(ViewId(1, 0), (0, 1, 1))
    with pytest.raises(ValueError):
        View(ViewId(1, 0), (0, 1), coordinator=5)


def test_view_wire_round_trip():
    view = View(ViewId(3, 1), (1, 2, 3), coordinator=2, f=0,
                underprovisioned=True)
    again = View.from_wire(view.to_wire())
    assert again == view
    assert again.coordinator == 2
    assert again.underprovisioned


def test_coordinator_rotates_with_counter():
    members = (10, 11, 12, 13)
    coords = [choose_coordinator(c, members) for c in range(8)]
    assert coords == [10, 11, 12, 13, 10, 11, 12, 13]


def test_coordinator_default_is_rotation():
    view = View(ViewId(5, 0), (0, 1, 2))
    assert view.coordinator == choose_coordinator(5, (0, 1, 2))


def test_choose_coordinator_empty_rejected():
    with pytest.raises(ValueError):
        choose_coordinator(0, ())


def test_singleton_view():
    view = singleton_view("me")
    assert view.mbrs == ("me",)
    assert view.coordinator == "me"
    assert view.underprovisioned
    assert view.vid.creator == "me"
