"""Shared helpers for the test suite."""

from __future__ import annotations

from repro import Group, StackConfig


def cast_payloads(endpoint):
    """Payloads of all CastDeliver events at an endpoint, in order."""
    return [e.payload for e in endpoint.events
            if type(e).__name__ == "CastDeliver"]


def cast_ids(endpoint):
    return [e.msg_id for e in endpoint.events
            if type(e).__name__ == "CastDeliver"]


def view_events(endpoint):
    return [e for e in endpoint.events if type(e).__name__ == "ViewEvent"]


def make_group(n, seed=0, established=True, behaviors=None, **config_kw):
    config = StackConfig.byz(**config_kw)
    return Group.bootstrap(n, config=config, seed=seed,
                           established=established, behaviors=behaviors)
