"""Integration tests for Byzantine membership maintenance (section 3.4)."""

from tests.helpers import make_group, view_events

from repro import Group, StackConfig
from repro.core.view import choose_coordinator


def surviving(group, excluded):
    return [n for n in group.processes if n not in excluded]


def test_crash_is_excluded_from_next_view():
    group = make_group(8, seed=1)
    group.run(0.05)
    group.crash(5)
    ok = group.run_until(
        lambda: all(5 not in p.view.mbrs for n, p in group.processes.items()
                    if n != 5 and not p.stopped), timeout=4.0)
    assert ok
    view = group.common_view()
    assert view is not None and view.n == 7


def test_leave_is_excluded_quickly():
    group = make_group(8, seed=2)
    group.run(0.05)
    group.endpoints[3].leave()
    ok = group.run_until(
        lambda: all(3 not in p.view.mbrs for n, p in group.processes.items()
                    if n != 3), timeout=4.0)
    assert ok
    durations = [p.membership.last_change_duration
                 for n, p in group.processes.items() if n != 3]
    assert all(d is not None and d < 0.5 for d in durations)


def test_survivors_agree_on_view_and_coordinator():
    group = make_group(8, seed=3)
    group.run(0.05)
    group.crash(0)  # crash the initial... member 0
    group.run_until(
        lambda: all(0 not in p.view.mbrs for n, p in group.processes.items()
                    if n != 0 and not p.stopped), timeout=4.0)
    views = {p.view for n, p in group.processes.items() if n != 0}
    assert len(views) == 1
    view = views.pop()
    assert view.coordinator in view.mbrs
    assert view.coordinator == choose_coordinator(1, view.mbrs)


def test_two_simultaneous_crashes():
    group = make_group(10, seed=4)
    group.run(0.05)
    group.crash(7)
    group.crash(8)
    ok = group.run_until(
        lambda: all(p.view.n == 8 for n, p in group.processes.items()
                    if not p.stopped), timeout=5.0)
    assert ok
    view = group.common_view()
    assert set(view.mbrs) == set(surviving(group, {7, 8}))


def test_sequential_crashes_multiple_view_changes():
    group = make_group(9, seed=5)
    group.run(0.05)
    group.crash(1)
    group.run_until(lambda: all(p.view.n == 8 for p in group.processes.values()
                                if not p.stopped), timeout=4.0)
    group.crash(2)
    ok = group.run_until(lambda: all(p.view.n == 7 for p in group.processes.values()
                                     if not p.stopped), timeout=4.0)
    assert ok
    live_views = [p.view for p in group.processes.values() if not p.stopped]
    assert all(v.vid.counter >= 3 for v in live_views)


def test_view_change_does_not_lose_casts():
    group = make_group(6, seed=6)
    for k in range(10):
        group.endpoints[0].cast(("pre", k))
    group.run(0.05)
    group.crash(4)
    group.run_until(lambda: all(p.view.n == 5 for p in group.processes.values()
                                if not p.stopped), timeout=4.0)
    group.run(0.2)
    for node in (0, 1, 2, 3, 5):
        payloads = [e.payload for e in group.endpoints[node].events
                    if type(e).__name__ == "CastDeliver"
                    and isinstance(e.payload, tuple) and e.payload[0] == "pre"]
        assert payloads == [("pre", k) for k in range(10)], "node %d" % node


def test_casting_during_view_change_resumes_in_new_view():
    group = make_group(6, seed=7)
    group.run(0.05)
    group.crash(5)
    group.run(0.03)  # mid-change
    for k in range(5):
        group.endpoints[1].cast(("mid", k))
    group.run_until(lambda: all(p.view.n == 5 for p in group.processes.values()
                                if not p.stopped), timeout=4.0)
    group.run(0.5)
    for node in (0, 1, 2, 3, 4):
        payloads = [e.payload for e in group.endpoints[node].events
                    if type(e).__name__ == "CastDeliver"
                    and isinstance(e.payload, tuple) and e.payload[0] == "mid"]
        assert payloads == [("mid", k) for k in range(5)], "node %d" % node


def test_singleton_bootstrap_merges_to_full_group():
    group = make_group(4, seed=8, established=False)
    ok = group.run_until(
        lambda: all(p.view.n == 4 for p in group.processes.values())
        and len({p.view.vid for p in group.processes.values()}) == 1,
        timeout=10.0)
    assert ok


def test_partition_forms_two_views():
    group = make_group(6, seed=9)
    group.run(0.05)
    group.partition({0, 1, 2}, {3, 4, 5})
    ok = group.run_until(
        lambda: all(p.view.n == 3 for p in group.processes.values()),
        timeout=6.0)
    assert ok
    side_a = {group.processes[n].view for n in (0, 1, 2)}
    side_b = {group.processes[n].view for n in (3, 4, 5)}
    assert len(side_a) == 1 and len(side_b) == 1
    assert side_a != side_b


def test_heal_merges_partitions_back():
    group = make_group(6, seed=10)
    group.run(0.05)
    group.partition({0, 1, 2}, {3, 4, 5})
    group.run_until(lambda: all(p.view.n == 3 for p in group.processes.values()),
                    timeout=6.0)
    group.heal()
    ok = group.run_until(
        lambda: all(p.view.n == 6 for p in group.processes.values())
        and len({p.view.vid for p in group.processes.values()}) == 1,
        timeout=10.0)
    assert ok


def test_asymmetric_partition():
    group = make_group(8, seed=11)
    group.run(0.05)
    group.partition({0, 1, 2, 3, 4}, {5, 6, 7})
    ok = group.run_until(
        lambda: all(p.view.n == 5 for n, p in group.processes.items() if n < 5)
        and all(p.view.n == 3 for n, p in group.processes.items() if n >= 5),
        timeout=6.0)
    assert ok


def test_view_counter_monotonic_per_process():
    group = make_group(6, seed=12)
    group.run(0.05)
    group.crash(5)
    group.run_until(lambda: all(p.view.n == 5 for p in group.processes.values()
                                if not p.stopped), timeout=4.0)
    for node, endpoint in group.endpoints.items():
        vids = [e.view.vid for e in view_events(endpoint)]
        for earlier, later in zip(vids, vids[1:]):
            assert earlier < later


def test_blocked_casts_are_sent_in_next_view():
    group = make_group(6, seed=13)
    group.run(0.05)
    group.crash(5)
    # force a cast while the stack is (likely) blocked mid-change
    group.run(0.02)
    group.endpoints[0].cast(("blocked?", 0))
    group.run_until(lambda: all(p.view.n == 5 for p in group.processes.values()
                                if not p.stopped), timeout=4.0)
    group.run(0.5)
    for node in range(5):
        payloads = [e.payload for e in group.endpoints[node].events
                    if type(e).__name__ == "CastDeliver"
                    and e.payload == ("blocked?", 0)]
        assert payloads, "node %d never got the blocked cast" % node


def test_dynamic_join_via_add_node():
    group = make_group(6, seed=14)
    group.run(0.05)
    newcomer = group.add_node(6)
    ok = group.run_until(
        lambda: all(p.view.n == 7 for p in group.processes.values()),
        timeout=8.0)
    assert ok
    assert 6 in group.processes[0].view.mbrs
    # the newcomer participates: traffic flows both ways
    newcomer.cast("i-am-new")
    group.endpoints[0].cast("welcome")
    group.run(0.3)
    new_payloads = [e.payload for e in newcomer.events
                    if type(e).__name__ == "CastDeliver"]
    assert "welcome" in new_payloads and "i-am-new" in new_payloads


def test_two_sequential_joins():
    group = make_group(5, seed=15)
    group.run(0.05)
    group.add_node(5)
    group.run_until(lambda: all(p.view.n == 6
                                for p in group.processes.values()),
                    timeout=8.0)
    group.add_node(6)
    ok = group.run_until(lambda: all(p.view.n == 7
                                     for p in group.processes.values()),
                         timeout=8.0)
    assert ok
    assert set(group.processes[0].view.mbrs) == set(range(7))


def test_join_duplicate_id_rejected():
    import pytest
    group = make_group(3, seed=16)
    with pytest.raises(ValueError):
        group.add_node(0)
