"""Every Byzantine behavior, driven through the chaos-engine path.

``test_byzantine_scenarios.py`` drives behaviors directly against a
hand-built group; these tests exercise the *plannable* path instead:
each behavior rides a :class:`~repro.chaos.plan.FaultPlan` op through
``run_plan`` (boot-time ``byzantine`` or mid-run ``byzantine_at``), and
the run must satisfy the Definitions 2.1/2.2 checker -- with at most f
Byzantine members the hardened stack tolerates each attack.
"""

import pytest

from repro.byzantine import behaviors as behavior_library
from repro.chaos import FaultPlan, run_plan
from repro.chaos.plan import RUNTIME_BEHAVIORS

#: churn tail shared by every scenario: casts from correct nodes, a view
#: change under attack, and enough run time for detection + recovery
_TAIL = [["cast", 0, 3], ["run", 0.5], ["cast", 1, 2],
         ["crash", 5], ["run", 3.0]]

#: (behavior, params) for the boot-time ``byzantine`` op -- one entry per
#: exported behavior class so a new behavior without coverage fails
#: ``test_every_behavior_is_covered``
BOOT_CASES = [
    ("MuteNode", {"mute_at": 0.1}),
    ("MuteCoordinator", {"mute_at": 0.1}),
    ("VerboseNode", {"start_at": 0.05, "interval": 0.005}),
    ("BadViewCoordinator", {}),
    ("TwoFacedCaster", {}),
    ("ForgedRetransmitter", {}),
    ("SlowNode", {"delay": 0.02, "start_at": 0.0}),
    ("Replayer", {}),
    ("Equivocator", {"start_at": 0.0}),
    ("TargetedSlanderer", {"start_at": 0.05, "interval": 0.005}),
    ("ReplayStorm", {"start_at": 0.05, "interval": 0.02, "burst": 4}),
]


def test_every_behavior_is_covered():
    exported = {name for name in dir(behavior_library)
                if isinstance(getattr(behavior_library, name), type)
                and issubclass(getattr(behavior_library, name),
                               behavior_library.ByzantineBehavior)
                and name != "ByzantineBehavior"}
    assert exported == {name for name, _params in BOOT_CASES}
    # every mid-run-plannable behavior is a real exported one
    assert set(RUNTIME_BEHAVIORS) <= exported


@pytest.mark.parametrize("name,params",
                         BOOT_CASES, ids=[c[0] for c in BOOT_CASES])
def test_behavior_tolerated_via_engine(name, params):
    plan = FaultPlan(seed=31, n=8,
                     ops=[["byzantine", 7, name, params]] + _TAIL)
    violations, engine = run_plan(plan, settle=3.0, event_budget=400_000,
                                  measure_recovery=True)
    assert not violations, violations
    assert not engine.stalled
    process = engine.group.processes[7]
    assert type(process.behavior).__name__ == name
    assert 7 in engine.group.byzantine_nodes


def test_two_faced_caster_under_total_order():
    plan = FaultPlan(seed=5, n=8, config={"total_order": True},
                     ops=[["byzantine", 6, "TwoFacedCaster", {}],
                          ["cast", 6, 2]] + _TAIL)
    violations, engine = run_plan(plan, settle=3.0, event_budget=400_000)
    assert not violations, violations
    assert engine.group.processes[6].behavior.forged > 0


@pytest.mark.parametrize("name", RUNTIME_BEHAVIORS)
def test_behavior_plannable_mid_run(name):
    """``byzantine_at`` installs the behavior on a live mid-run process."""
    params = dict(dict(BOOT_CASES)[name])
    plan = FaultPlan(seed=11, n=8,
                     ops=[["cast", 0, 2], ["run", 0.3],
                          ["byzantine_at", 6, name, params]] + _TAIL)
    violations, engine = run_plan(plan, settle=3.0, event_budget=400_000)
    assert not violations, violations
    process = engine.group.processes[6]
    assert type(process.behavior).__name__ == name
    assert 6 in engine.group.byzantine_nodes


def test_equivocator_actually_equivocates_under_churn():
    plan = FaultPlan(seed=3, n=8,
                     ops=[["byzantine", 5, "Equivocator", {}],
                          ["cast", 0, 2], ["leave", 4], ["run", 1.0],
                          ["crash", 6], ["run", 3.0]])
    violations, engine = run_plan(plan, settle=3.0, event_budget=400_000)
    assert not violations, violations
    assert engine.group.processes[5].behavior.equivocations > 0


def test_slanderer_floods_but_victim_survives():
    plan = FaultPlan(seed=8, n=8,
                     ops=[["byzantine", 7, "TargetedSlanderer",
                           {"target": 2, "start_at": 0.02,
                            "interval": 0.003}],
                          ["cast", 2, 3], ["run", 2.0]])
    violations, engine = run_plan(plan, settle=3.0, event_budget=400_000)
    assert not violations, violations
    behavior = engine.group.processes[7].behavior
    assert behavior.slanders_sent > 0
    # one slanderer is below every suspicion threshold: the victim stays
    # in the final view everywhere (run_plan stops the group after checks)
    assert all(2 in p.view.mbrs for p in engine.group.processes.values())


def test_replay_storm_with_stale_incarnation_is_filtered():
    plan = FaultPlan(seed=13, n=8,
                     ops=[["cast", 0, 2], ["run", 0.3],
                          ["byzantine_at", 6, "ReplayStorm",
                           {"start_at": 0.02, "interval": 0.01, "burst": 6,
                            "spoof_incarnation": True}],
                          ["run", 2.0]])
    violations, engine = run_plan(plan, settle=3.0, event_budget=400_000)
    assert not violations, violations
    assert engine.group.processes[6].behavior.replayed > 0
