"""Trailing-loss recovery: the last message of a burst has no successor,
so gap-driven NAKs never notice it is missing.  Recovery must come from
peer ack vectors (``ReliableLayer._recover_trailing``), which double as
existence proofs for unseen suffixes."""

import pytest

from repro import Group, StackConfig
from repro.core import message as mk
from repro.core.message import Message
from repro.sim.network import NetworkConfig


def test_trailing_loss_repaired_via_ack_vectors():
    """Surgical version: drop exactly the final cast of a burst on one
    link and nothing else.  The victim sees no gap -- only the ack-vector
    existence proof can trigger the repair."""
    group = Group.bootstrap(4, config=StackConfig.byz(), seed=5)
    group.run(0.1)
    burst = 5
    ids = [group.endpoints[0].cast(("burst", k)) for k in range(burst)]
    last_id = ids[-1]

    class DropLastCast:
        """One-link, one-message chaos filter (Network.chaos contract)."""
        dropped = 0

        def filter(self, src, dst, payload):
            if (src == 0 and dst == 1 and isinstance(payload, Message)
                    and payload.kind == mk.KIND_CAST
                    and payload.msg_id == last_id):
                DropLastCast.dropped += 1
                return payload, 0, True
            return payload, 0, False

    group.network.chaos = DropLastCast()
    ok = group.run_until(
        lambda: all(p.top.delivered >= burst
                    for p in group.processes.values()),
        timeout=10.0)
    assert ok, "victim never recovered the trailing cast"
    # the original transmission really was suppressed; what arrived was a
    # retransmission requested off the ack-vector evidence
    assert DropLastCast.dropped >= 1
    victim = group.processes[1].reliable
    assert victim._trailing_nak_at, "recovery did not use the trailing path"
    group.stop()


@pytest.mark.parametrize("drop", [0.1, 0.2, 0.3])
def test_bursts_survive_heavy_random_loss(drop):
    """Statistical version: whole bursts converge under up to 30% random
    loss, tail messages included."""
    group = Group.bootstrap(
        4, config=StackConfig.byz(), seed=int(drop * 100),
        net_config=NetworkConfig(drop_prob=drop))
    group.run(0.1)
    burst = 8
    for k in range(burst):
        group.endpoints[0].cast(("heavy", k))
    ok = group.run_until(
        lambda: all(p.top.delivered >= burst
                    for p in group.processes.values()
                    if not p.stopped),
        timeout=30.0)
    assert ok, "burst did not fully deliver at drop=%s" % drop
    group.stop()
