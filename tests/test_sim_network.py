"""Unit tests for the oblivious network model."""

import pytest

from repro.sim.network import Cpu, Network, NetworkConfig, Nic
from repro.sim.scheduler import Simulator
from repro.sim.topology import FlatGigE


def make_net(n=4, seed=0, **config_kw):
    sim = Simulator(seed=seed)
    net = Network(sim, FlatGigE(n), NetworkConfig(**config_kw))
    inboxes = {}
    for node in range(n):
        inboxes[node] = []
        net.attach(node, lambda src, p, node=node: inboxes[node].append((src, p)))
    return sim, net, inboxes


def test_unicast_delivers_with_latency():
    sim, net, inboxes = make_net(jitter=0.0)
    net.send(0, 1, 100, "hello")
    sim.run()
    assert inboxes[1] == [(0, "hello")]
    assert sim.now >= FlatGigE.base_latency


def test_messages_do_not_echo_to_sender():
    sim, net, inboxes = make_net()
    net.send(0, 1, 10, "m")
    sim.run()
    assert inboxes[0] == []


def test_nic_serializes_bandwidth():
    sim = Simulator()
    nic = Nic(sim, bandwidth_bps=8_000_000, overhead_bytes=0)  # 1 MB/s
    first = nic.transmit(1000)   # 1ms
    second = nic.transmit(1000)  # queued behind the first
    assert abs(first - 0.001) < 1e-9
    assert abs(second - 0.002) < 1e-9


def test_cpu_charges_sequentially():
    sim = Simulator()
    cpu = Cpu(sim)
    assert abs(cpu.charge(0.010) - 0.010) < 1e-12
    assert abs(cpu.charge(0.005) - 0.015) < 1e-12
    assert abs(cpu.busy_accum - 0.015) < 1e-12


def test_drop_probability_drops_some():
    sim, net, inboxes = make_net(drop_prob=0.5, seed=7)
    for _ in range(200):
        net.send(0, 1, 10, "m")
    sim.run()
    received = len(inboxes[1])
    assert 40 < received < 160
    assert net.datagrams_dropped > 0


def test_partition_blocks_cross_component_traffic():
    sim, net, inboxes = make_net()
    net.set_components([{0, 1}, {2, 3}])
    net.send(0, 2, 10, "blocked")
    net.send(0, 1, 10, "ok")
    sim.run()
    assert inboxes[2] == []
    assert inboxes[1] == [(0, "ok")]


def test_connectivity_is_symmetric_and_transitive():
    sim, net, _ = make_net()
    net.set_components([{0, 1, 2}])
    for a in (0, 1, 2):
        for b in (0, 1, 2):
            assert net.connected(a, b)
            assert net.connected(b, a)
    assert not net.connected(0, 3)
    assert not net.connected(3, 0)


def test_nodes_not_in_any_component_become_singletons():
    sim, net, _ = make_net()
    net.set_components([{0, 1}])
    assert not net.connected(2, 3)
    assert net.connected(2, 2)


def test_two_components_cannot_overlap():
    sim, net, _ = make_net()
    with pytest.raises(ValueError):
        net.set_components([{0, 1}, {1, 2}])


def test_heal_reconnects_everything():
    sim, net, inboxes = make_net()
    net.set_components([{0}, {1}, {2}, {3}])
    net.heal()
    net.send(0, 3, 10, "m")
    sim.run()
    assert inboxes[3] == [(0, "m")]


def test_crashed_node_neither_sends_nor_receives():
    sim, net, inboxes = make_net()
    net.crash(1)
    net.send(0, 1, 10, "to-crashed")
    net.send(1, 0, 10, "from-crashed")
    sim.run()
    assert inboxes[1] == []
    assert inboxes[0] == []


def test_gossip_reaches_all_connected_listeners():
    sim = Simulator()
    net = Network(sim, FlatGigE(4), NetworkConfig())
    heard = {node: [] for node in range(4)}
    for node in range(4):
        net.attach(node, lambda src, p: None,
                   lambda src, p, node=node: heard[node].append((src, p)))
    net.set_components([{0, 1, 2}, {3}])
    net.gossip_cast(0, 32, "announce")
    sim.run()
    assert heard[1] == [(0, "announce")]
    assert heard[2] == [(0, "announce")]
    assert heard[3] == []   # partitioned away
    assert heard[0] == []   # no self-gossip


def test_reorder_probability_can_invert_arrival():
    sim, net, inboxes = make_net(reorder_prob=1.0, seed=3)
    # with reorder_prob=1 every message gets an extra random delay, so FIFO
    # order across sends is no longer guaranteed
    for i in range(50):
        net.send(0, 1, 10, i)
    sim.run()
    payloads = [p for _src, p in inboxes[1]]
    assert payloads != sorted(payloads)
    assert sorted(payloads) == list(range(50))


def test_duplicate_probability_duplicates():
    sim, net, inboxes = make_net(duplicate_prob=1.0)
    net.send(0, 1, 10, "m")
    sim.run()
    assert len(inboxes[1]) == 2


def test_attach_twice_rejected():
    sim, net, _ = make_net()
    with pytest.raises(ValueError):
        net.attach(0, lambda s, p: None)
