"""Tests for the per-cast uniform delivery layer."""

from tests.helpers import cast_payloads, make_group

from repro import Group, StackConfig
from repro.byzantine.behaviors import TwoFacedCaster
from repro.sim.network import NetworkConfig


def test_uniform_delivery_happy_path():
    group = make_group(8, seed=1, uniform_delivery=True)
    for node in range(8):
        group.endpoints[node].cast(("u", node))
    group.run(0.6)
    for node in range(8):
        payloads = set(cast_payloads(group.endpoints[node]))
        assert payloads == {("u", k) for k in range(8)}
        assert group.processes[node].uniform.delivered_uniform == 8


def test_uniform_preserves_per_origin_fifo():
    group = make_group(8, seed=2, uniform_delivery=True)
    for k in range(10):
        group.endpoints[1].cast(("f", k))
    group.run(1.0)
    for node in range(8):
        mine = [p for p in cast_payloads(group.endpoints[node])
                if isinstance(p, tuple) and p[0] == "f"]
        assert mine == [("f", k) for k in range(10)]


def test_two_faced_cast_agreed_or_suppressed():
    behaviors = {3: TwoFacedCaster()}
    config = StackConfig.byz(uniform_delivery=True)
    group = Group.bootstrap(8, config=config, seed=3, behaviors=behaviors)
    group.byzantine_nodes = {3}
    group.endpoints[3].cast(("attack", 1))
    group.run(1.0)
    versions = set()
    for node in range(8):
        if node == 3:
            continue
        for ev in group.processes[node].history.events:
            if ev[0] == "cast_deliver" and ev[3] == 3:
                versions.add(ev[4])
    # uniformity: at most one version delivered anywhere
    assert len(versions) <= 1


def test_two_faced_minority_copy_recovered_by_fetch():
    # alter the copy for exactly one receiver: the quorum agrees on the
    # majority digest and the odd receiver fetches a matching copy
    def alter(payload, dst):
        if dst == 5:
            return ("evil-version",)
        return payload

    behaviors = {2: TwoFacedCaster(alter=alter)}
    config = StackConfig.byz(uniform_delivery=True)
    group = Group.bootstrap(8, config=config, seed=4, behaviors=behaviors)
    group.byzantine_nodes = {2}
    group.endpoints[2].cast(("真", 1))
    group.run(1.5)
    delivered_at_5 = [ev for ev in group.processes[5].history.events
                      if ev[0] == "cast_deliver" and ev[3] == 2]
    if delivered_at_5:
        # node 5 must have delivered the majority version, not its own copy
        others = [ev for node in (0, 1, 4) for ev in
                  group.processes[node].history.events
                  if ev[0] == "cast_deliver" and ev[3] == 2]
        assert others
        assert delivered_at_5[0][4] == others[0][4]
        assert group.processes[5].uniform.mismatches_recovered >= 1


def test_uniform_delivery_under_message_loss():
    config = StackConfig.byz(uniform_delivery=True)
    group = Group.bootstrap(8, config=config, seed=5,
                            net_config=NetworkConfig(drop_prob=0.1))
    for k in range(5):
        group.endpoints[0].cast(("l", k))
    group.run(2.5)
    for node in range(8):
        mine = [p for p in cast_payloads(group.endpoints[node])
                if isinstance(p, tuple) and p[0] == "l"]
        assert mine == [("l", k) for k in range(5)], "node %d" % node


def test_uniform_inactive_when_total_order_on():
    # total ordering subsumes uniform agreement (paper section 3.5)
    group = make_group(7, seed=6, total_order=True, uniform_delivery=True)
    group.endpoints[0].cast("x")
    group.run(0.5)
    assert group.processes[1].uniform.delivered_uniform == 0
    assert "x" in cast_payloads(group.endpoints[1])
