"""Unit tests for the discrete-event simulator kernel."""

import pytest

from repro.sim.scheduler import SimulationError, Simulator


def test_events_fire_in_deadline_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, fired.append, "c")
    sim.schedule(0.1, fired.append, "a")
    sim.schedule(0.2, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for token in range(10):
        sim.schedule(0.5, fired.append, token)
    sim.run()
    assert fired == list(range(10))


def test_now_tracks_event_deadline():
    sim = Simulator()
    observed = []
    sim.schedule(1.5, lambda: observed.append(sim.now))
    sim.run()
    assert observed == [1.5]
    assert sim.now == 1.5


def test_run_until_boundary_leaves_later_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(2.0, fired.append, "late")
    sim.run(until=1.5)
    assert fired == ["early"]
    assert sim.now == 1.5
    assert sim.pending == 1
    sim.run()
    assert fired == ["early", "late"]


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, fired.append, "x")
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.active


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    assert sim.run() == 0


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_deadline_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            sim.schedule(0.1, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert abs(sim.now - 0.5) < 1e-12


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(0.001, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_run_until_predicate():
    sim = Simulator()
    state = {"count": 0}

    def tick():
        state["count"] += 1
        sim.schedule(0.1, tick)

    sim.schedule(0.1, tick)
    assert sim.run_until(lambda: state["count"] >= 3, timeout=10.0)
    assert state["count"] == 3


def test_run_until_timeout_advances_clock():
    sim = Simulator()
    assert not sim.run_until(lambda: False, timeout=2.0)
    assert sim.now == 2.0


def test_determinism_same_seed_same_draws():
    draws_a = Simulator(seed=123).rng.random()
    draws_b = Simulator(seed=123).rng.random()
    assert draws_a == draws_b


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(0.1, fired.append, 1)
    sim.schedule(0.2, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


# ----------------------------------------------------------------------
# serial queues (the k-way merge behind per-node CPU completions)
# ----------------------------------------------------------------------
def test_serial_entries_interleave_with_heap_events():
    sim = Simulator()
    queue = sim.serial_queue()
    fired = []
    sim.schedule_serial(queue, 0.1, fired.append, "s1")
    sim.schedule(0.2, fired.append, "h1")
    sim.schedule_serial(queue, 0.3, fired.append, "s2")
    sim.schedule(0.4, fired.append, "h2")
    sim.schedule_serial(queue, 0.5, fired.append, "s3")
    sim.run()
    assert fired == ["s1", "h1", "s2", "h2", "s3"]


def test_serial_ties_break_by_schedule_order():
    # the insertion sequence comes from the shared counter at schedule
    # time, so equal deadlines fire in schedule order across queues and
    # plain heap entries alike -- the byte-identity contract
    sim = Simulator()
    qa, qb = sim.serial_queue(), sim.serial_queue()
    fired = []
    sim.schedule_serial(qa, 1.0, fired.append, "a1")
    sim.schedule(1.0, fired.append, "h")
    sim.schedule_serial(qb, 1.0, fired.append, "b1")
    sim.schedule_serial(qa, 1.0, fired.append, "a2")
    sim.run()
    assert fired == ["a1", "h", "b1", "a2"]


def test_serial_backlog_keeps_heap_small():
    sim = Simulator()
    queue = sim.serial_queue()
    fired = []
    for i in range(100):
        sim.schedule_serial(queue, 0.1 * (i + 1), fired.append, i)
    # only the queue head occupies the heap; the backlog is parked
    assert len(sim._heap) == 1
    assert sim.pending == 100
    sim.run()
    assert fired == list(range(100))
    assert sim.pending == 0


def test_serial_hidden_entry_cancellation():
    sim = Simulator()
    queue = sim.serial_queue()
    fired = []
    sim.schedule_serial(queue, 0.1, fired.append, "head")
    hidden = sim.schedule_serial(queue, 0.2, fired.append, "hidden")
    sim.schedule_serial(queue, 0.3, fired.append, "tail")
    hidden.cancel()
    sim.run()
    assert fired == ["head", "tail"]


def test_serial_head_cancellation_promotes_successor():
    sim = Simulator()
    queue = sim.serial_queue()
    fired = []
    head = sim.schedule_serial(queue, 0.1, fired.append, "head")
    sim.schedule_serial(queue, 0.2, fired.append, "next")
    head.cancel()
    sim.run()
    assert fired == ["next"]


def test_serial_non_monotone_deadline_falls_back_to_heap():
    # a deadline below the queue tail violates the monotonicity contract;
    # the entry silently becomes a plain heap entry and still fires in
    # correct global order
    sim = Simulator()
    queue = sim.serial_queue()
    fired = []
    sim.schedule_serial(queue, 0.5, fired.append, "tail")
    sim.schedule_serial(queue, 0.2, fired.append, "early")
    sim.run()
    assert fired == ["early", "tail"]


def test_serial_past_deadline_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    queue = sim.serial_queue()
    with pytest.raises(SimulationError):
        sim.schedule_serial(queue, 0.5, lambda: None)


def test_serial_refill_after_drain():
    # once a queue empties its next entry must re-enter the heap
    sim = Simulator()
    queue = sim.serial_queue()
    fired = []
    sim.schedule_serial(queue, 0.1, fired.append, "first")
    sim.run()
    sim.schedule_serial(queue, 0.2, fired.append, "second")
    sim.run()
    assert fired == ["first", "second"]


def test_timers_covers_hidden_serial_entries():
    sim = Simulator()
    queue = sim.serial_queue()
    sim.schedule_serial(queue, 0.1, lambda: None)
    sim.schedule_serial(queue, 0.2, lambda: None)
    sim.schedule(0.3, lambda: None)
    deadlines = sorted(deadline for deadline, _seq, _timer in sim.timers())
    assert deadlines == [0.1, 0.2, 0.3]


def test_serial_switch_off_degrades_to_heap():
    saved = Simulator.serial_queues
    Simulator.serial_queues = False
    try:
        sim = Simulator()
        queue = sim.serial_queue()
        fired = []
        sim.schedule_serial(queue, 0.1, fired.append, "s1")
        sim.schedule_serial(queue, 0.2, fired.append, "s2")
        # reference mode: every entry sits in the heap, none are hidden
        assert len(sim._heap) == 2
        assert sim.pending == 2
        sim.run()
        assert fired == ["s1", "s2"]
    finally:
        Simulator.serial_queues = saved
