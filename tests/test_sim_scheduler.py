"""Unit tests for the discrete-event simulator kernel."""

import pytest

from repro.sim.scheduler import SimulationError, Simulator


def test_events_fire_in_deadline_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, fired.append, "c")
    sim.schedule(0.1, fired.append, "a")
    sim.schedule(0.2, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for token in range(10):
        sim.schedule(0.5, fired.append, token)
    sim.run()
    assert fired == list(range(10))


def test_now_tracks_event_deadline():
    sim = Simulator()
    observed = []
    sim.schedule(1.5, lambda: observed.append(sim.now))
    sim.run()
    assert observed == [1.5]
    assert sim.now == 1.5


def test_run_until_boundary_leaves_later_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(2.0, fired.append, "late")
    sim.run(until=1.5)
    assert fired == ["early"]
    assert sim.now == 1.5
    assert sim.pending == 1
    sim.run()
    assert fired == ["early", "late"]


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, fired.append, "x")
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.active


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    assert sim.run() == 0


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_deadline_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            sim.schedule(0.1, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert abs(sim.now - 0.5) < 1e-12


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(0.001, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_run_until_predicate():
    sim = Simulator()
    state = {"count": 0}

    def tick():
        state["count"] += 1
        sim.schedule(0.1, tick)

    sim.schedule(0.1, tick)
    assert sim.run_until(lambda: state["count"] >= 3, timeout=10.0)
    assert state["count"] == 3


def test_run_until_timeout_advances_clock():
    sim = Simulator()
    assert not sim.run_until(lambda: False, timeout=2.0)
    assert sim.now == 2.0


def test_determinism_same_seed_same_draws():
    draws_a = Simulator(seed=123).rng.random()
    draws_b = Simulator(seed=123).rng.random()
    assert draws_a == draws_b


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(0.1, fired.append, 1)
    sim.schedule(0.2, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()
