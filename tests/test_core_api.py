"""Tests for the public API surface: Group, GroupEndpoint, History."""

import pytest

from tests.helpers import make_group

from repro import Group, StackConfig
from repro.core.history import content_digest


def test_bootstrap_installs_common_initial_view():
    group = make_group(5, seed=1)
    views = {p.view for p in group.processes.values()}
    assert len(views) == 1
    view = views.pop()
    assert view.mbrs == (0, 1, 2, 3, 4)
    assert view.vid.counter == 1


def test_bootstrap_custom_node_ids():
    config = StackConfig.byz()
    group = Group.bootstrap(3, config=config, seed=2,
                            node_ids=["alpha", "beta", "gamma"])
    assert set(group.endpoints) == {"alpha", "beta", "gamma"}
    group.endpoints["alpha"].cast("hi")
    group.run(0.2)
    payloads = [e.payload for e in group.endpoints["gamma"].events
                if type(e).__name__ == "CastDeliver"]
    assert payloads == ["hi"]


def test_endpoint_view_property_tracks_installs():
    group = make_group(4, seed=3)
    assert group.endpoints[0].view.n == 4
    group.crash(3)
    group.run_until(lambda: group.endpoints[0].view.n == 3, timeout=4.0)
    assert 3 not in group.endpoints[0].view.mbrs


def test_send_to_self_rejected():
    group = make_group(3, seed=4)
    with pytest.raises(ValueError):
        group.endpoints[0].send(0, "loop")


def test_stopped_endpoint_rejects_traffic():
    group = make_group(3, seed=5)
    group.crash(1)
    with pytest.raises(RuntimeError):
        group.endpoints[1].cast("zombie")


def test_endpoint_records_events_in_order():
    group = make_group(3, seed=6)
    group.endpoints[0].cast("a")
    group.endpoints[0].cast("b")
    group.run(0.2)
    events = group.endpoints[1].events
    names = [type(e).__name__ for e in events]
    assert names[0] == "ViewEvent"
    deliveries = [e.payload for e in events
                  if type(e).__name__ == "CastDeliver"]
    assert deliveries == ["a", "b"]


def test_event_recording_can_be_disabled():
    group = make_group(3, seed=7)
    group.endpoints[1].record_events = False
    seen = []
    group.endpoints[1].on_cast = lambda ev: seen.append(ev.payload)
    group.endpoints[0].cast("x")
    group.run(0.2)
    assert seen == ["x"]
    assert not [e for e in group.endpoints[1].events
                if type(e).__name__ == "CastDeliver"]


def test_history_views_and_deliveries():
    group = make_group(3, seed=8)
    msg_id = group.endpoints[0].cast("payload")
    group.run(0.2)
    history = group.processes[2].history
    assert len(history.views()) == 1
    assert msg_id in history.deliveries_in_view(group.processes[2].view.vid)
    assert history.delivery_digests()[msg_id] == content_digest("payload")


def test_execution_snapshot_marks_byzantine():
    from repro.byzantine.behaviors import MuteNode
    config = StackConfig.byz()
    group = Group.bootstrap(4, config=config, seed=9,
                            behaviors={2: MuteNode(mute_at=99.0)})
    execution = group.execution()
    assert execution.correct == {0, 1, 3}


def test_common_view_none_when_divergent():
    group = make_group(6, seed=10)
    group.run(0.05)
    group.partition({0, 1, 2}, {3, 4, 5})
    group.run_until(lambda: all(p.view.n == 3 for p in group.processes.values()),
                    timeout=6.0)
    assert group.common_view() is None


def test_group_stop_halts_everything():
    group = make_group(3, seed=11)
    group.stop()
    before = group.sim.events_processed
    group.run(0.5)
    # only already-queued-and-cancelled timers; no protocol activity
    assert all(p.stopped for p in group.processes.values())


def test_message_ids_unique_per_sender():
    group = make_group(3, seed=12)
    ids = {group.endpoints[0].cast(("m", k)) for k in range(10)}
    assert len(ids) == 10
    assert all(origin == 0 for origin, _counter in ids)


def test_f_exposed_on_process_matches_config():
    group = make_group(13, seed=13)
    # the stack f is bounded by BOTH protocols: consensus allows 2 at n=13
    # but the 2-step uniform broadcast's liveness bound allows only 1
    assert group.processes[0].f == StackConfig.byz().resilience(13) == 1


def test_process_stop_is_idempotent_and_quiesces():
    group = make_group(3, seed=20)
    group.run(0.1)
    process = group.processes[0]
    process.stop()
    process.stop()  # no error
    assert process.stopped
    # a stopped process generates no further history
    before = len(process.history.events)
    group.run(0.5)
    assert len(process.history.events) == before
