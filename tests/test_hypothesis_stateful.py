"""Model-based stateful testing (hypothesis RuleBasedStateMachine).

The reliable layer's contract -- per-origin FIFO, no holes, no
duplicates, eventual delivery -- is checked against a trivial oracle
(per-origin lists) while hypothesis drives arbitrary interleavings of
casts, clock advances, and adversarial network weather.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)

from repro import Group, StackConfig
from repro.sim.network import NetworkConfig


class ReliableDeliveryMachine(RuleBasedStateMachine):
    """Random op-sequences against a 4-node group with a lossy network."""

    @initialize(seed=st.integers(min_value=0, max_value=2**31),
                drop=st.sampled_from([0.0, 0.05, 0.15]),
                reorder=st.sampled_from([0.0, 0.1]))
    def boot(self, seed, drop, reorder):
        self.group = Group.bootstrap(
            4, config=StackConfig.byz(), seed=seed,
            net_config=NetworkConfig(drop_prob=drop, reorder_prob=reorder))
        self.sent = {node: [] for node in self.group.endpoints}

    @rule(sender=st.integers(min_value=0, max_value=3),
          count=st.integers(min_value=1, max_value=5))
    def cast(self, sender, count):
        for _ in range(count):
            index = len(self.sent[sender])
            self.sent[sender].append(("m", sender, index))
            self.group.endpoints[sender].cast(("m", sender, index))

    @rule(duration=st.sampled_from([0.01, 0.05, 0.2]))
    def advance(self, duration):
        self.group.run(duration)

    @invariant()
    def deliveries_are_fifo_prefixes(self):
        if not hasattr(self, "group"):
            return
        for node, endpoint in self.group.endpoints.items():
            per_origin = {}
            for event in endpoint.events:
                if type(event).__name__ != "CastDeliver":
                    continue
                payload = event.payload
                if not (isinstance(payload, tuple) and payload[0] == "m"):
                    continue
                per_origin.setdefault(payload[1], []).append(payload)
            for origin, delivered in per_origin.items():
                expected_prefix = self.sent[origin][: len(delivered)]
                assert delivered == expected_prefix, (
                    "node %r: %r != prefix %r"
                    % (node, delivered[-3:], expected_prefix[-3:]))

    def teardown(self):
        if hasattr(self, "group"):
            # quiescence: everything sent must eventually arrive everywhere
            self.group.run(3.0)
            self.deliveries_are_fifo_prefixes()
            for node, endpoint in self.group.endpoints.items():
                got = sum(1 for e in endpoint.events
                          if type(e).__name__ == "CastDeliver"
                          and isinstance(e.payload, tuple)
                          and e.payload[0] == "m")
                total = sum(len(v) for v in self.sent.values())
                assert got == total, (node, got, total)
            self.group.stop()


ReliableDeliveryMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None)

TestReliableDelivery = ReliableDeliveryMachine.TestCase
