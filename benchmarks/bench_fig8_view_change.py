"""Figure 8: time to establish a new view vs group size.

Paper lines: merge->init (a node joins) and leave->init (a member
departs), measured once the event is known.  Expected shape: sub-second
everywhere, growing with the view size (the paper reads ~0.35 s at n=50
and notes the growth "suggests that in order to grow to much larger
groups, a more scalable overlay based solution might be needed"); merge
and leave roughly equal.
"""

import pytest

from benchmarks.harness import view_change_latency

FIG8_SIZES = (8, 16, 24, 40)


@pytest.mark.parametrize("n", FIG8_SIZES)
@pytest.mark.parametrize("kind", ("leave", "merge"))
def test_fig8_view_establishment(benchmark, kind, n):
    result = benchmark.pedantic(
        lambda: view_change_latency(n, kind), rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["converged"]
    assert result["seconds"] < 1.0


def test_fig8_shape_latency_grows_with_view_size():
    small = view_change_latency(8, "leave")
    large = view_change_latency(40, "leave")
    assert small["converged"] and large["converged"]
    assert large["seconds"] > small["seconds"]


def test_fig8_shape_merge_and_leave_comparable():
    """The paper's two curves track each other closely."""
    leave = view_change_latency(16, "leave")
    merge = view_change_latency(16, "merge")
    assert leave["converged"] and merge["converged"]
    assert merge["seconds"] < 20 * max(leave["seconds"], 1e-3)
