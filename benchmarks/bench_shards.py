"""Throughput scaling of the sharded service plane (``repro.shard``).

The paper's stack pays O(n^2) datagrams per broadcast, so one big group
hits a wall: a 50-node monolith delivers fewer broadcasts per second
than a handful of 5-node groups combined.  The shard plane exists to
cash that observation in -- N independent groups over ONE shared
runtime, a consistent-hash directory routing keys to shards -- and this
benchmark is the receipt.  Two workloads:

* ``saturation`` -- every shard runs the paper's ring workload
  (16-byte casts, burst 16) simultaneously on the shared simulator;
  the figure of merit is **aggregate broadcasts per simulated second**
  across the plane, compared against one monolithic group run the same
  way on the same runtime type (``label="single"`` points).  The
  headline ratio (64 shards x 5 nodes vs one 50-node group) is printed
  and stored as ``speedup_vs_single_group``.
* ``clients`` -- 10k+ simulated clients, each a key routed through the
  directory to its owning shard; every request is a group cast
  submitted at a member of that shard, complete when all members
  deliver it.  Reports completed requests per simulated second and the
  p99 request latency (cast to last delivery).

Simulated results (msgs/s, p99) are deterministic under a seed; wall
metrics are host-dependent, so cross-run comparison
(``--check-against``) gates on the *calibration-normalized* events/sec
exactly like ``bench_wallclock.py`` (shared ``calibrate`` /
``check_against`` machinery).

Usage::

    python benchmarks/bench_shards.py [--quick] [--out BENCH_shards.json]
        [--check-against BASELINE.json [--tolerance 0.30]] [--tag NAME]
        [--require-speedup 8.0]

``--quick`` (the CI shard-smoke shape) runs the 16x5 plane against a
20-node monolith; its point keys are a subset of the full run's, so a
full-run baseline file gates quick runs too.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.bench_wallclock import calibrate, check_against
from repro import Cluster, StackConfig
from repro.apps.ring import RingDemo
from repro.obs.metrics import percentile

#: (shards, nodes_per_shard) saturation points; quick is a prefix of full
#: so a full-run baseline file also gates --quick runs
SAT_FULL = ((16, 5), (64, 5), (64, 7), (128, 5))
SAT_QUICK = ((16, 5),)
#: monolithic single-group baselines (same runtime type, same topology)
SINGLE_FULL = (20, 50)
SINGLE_QUICK = (20,)
#: (shards, nodes_per_shard, clients) swarm points
CLIENTS_FULL = ((16, 5, 2560), (64, 5, 10240))
CLIENTS_QUICK = ((16, 5, 2560),)
#: (shards, nodes_per_shard) live-migration latency points; the ISSUE's
#: acceptance names the 16x5 plane, so quick == full here
MIG_FULL = ((16, 5),)
MIG_QUICK = ((16, 5),)
#: headline speedup pair: (plane shape, single-group n)
HEADLINE_FULL = ((64, 5), 50)
HEADLINE_QUICK = ((16, 5), 20)

#: fixed measurement windows (simulated seconds) for the saturation
#: workload; aggregating over >=16 shards smooths per-shard noise, so
#: the plane gets by with a shorter window than a lone fig5 point
PLANE_WARM_S = 0.05
PLANE_MEASURE_S = 0.15


# ----------------------------------------------------------------------
# saturation: aggregate ring throughput of the plane
# ----------------------------------------------------------------------
def plane_saturation(shards, nodes_per_shard, seed=7, burst=16):
    """Run the ring workload on every shard at once; aggregate msgs/s."""
    cluster = Cluster.create(shards=shards, nodes_per_shard=nodes_per_shard,
                             config=StackConfig.byz(), seed=seed)
    rings = [RingDemo(cluster.shard_group(s), burst=burst, msg_size=16)
             for s in range(shards)]
    for ring in rings:
        ring.start()
    cluster.run(PLANE_WARM_S)
    for ring in rings:
        ring.start_measurement()
    cluster.run(PLANE_MEASURE_S)
    for ring in rings:
        ring.stop_measurement()
    aggregate = sum(ring.throughput for ring in rings)
    samples = [s for ring in rings for s in ring.latency.samples]
    result = {
        "msgs_per_s": aggregate,
        "p99_ms": percentile(samples, 99) * 1000.0 if samples else None,
        "rounds": min(ring.min_rounds_completed() for ring in rings),
        "events": cluster.sim.events_processed,
    }
    cluster.stop()
    return result


def single_group_saturation(n, seed=7, burst=16):
    """The monolith: one n-node group, same runtime type and topology."""
    cluster = Cluster.create(shards=1, nodes_per_shard=n,
                             config=StackConfig.byz(), seed=seed)
    ring = RingDemo(cluster.group, burst=burst, msg_size=16)
    ring.start()
    cluster.run(max(PLANE_WARM_S, 0.4 / n))
    ring.start_measurement()
    cluster.run(max(PLANE_MEASURE_S, 1.6 / n))
    ring.stop_measurement()
    result = {
        "msgs_per_s": ring.throughput,
        "p99_ms": (percentile(ring.latency.samples, 99) * 1000.0
                   if ring.latency.samples else None),
        "rounds": ring.min_rounds_completed(),
        "events": cluster.sim.events_processed,
    }
    cluster.stop()
    return result


# ----------------------------------------------------------------------
# clients: directory-routed request swarm with end-to-end latency
# ----------------------------------------------------------------------
def client_swarm(shards, nodes_per_shard, clients, seed=7,
                 window=0.5, grace=2.0):
    """``clients`` keys routed through the directory; one cast each.

    Submissions are spread uniformly over ``window`` simulated seconds
    (an open-loop arrival process); a request is complete when every
    member of its owning shard delivers the cast.  Returns completed
    count, completions per simulated second, and the p99 of
    (submit -> last delivery) latency.
    """
    cluster = Cluster.create(shards=shards, nodes_per_shard=nodes_per_shard,
                             config=StackConfig.byz(), seed=seed)
    sim = cluster.sim
    members = {s: sorted(cluster.shard_group(s).endpoints)
               for s in range(shards)}
    pending = {}          # key -> submit time
    counts = {}           # key -> deliveries so far
    latencies = []

    def make_on_cast():
        def on_cast(event):
            payload = event.payload
            if not (isinstance(payload, tuple) and payload
                    and payload[0] == "req"):
                return
            key = payload[1]
            counts[key] = counts.get(key, 0) + 1
            if counts[key] == nodes_per_shard:
                latencies.append(sim.now - pending[key])
        return on_cast

    for s in range(shards):
        for endpoint in cluster.shard_group(s).endpoints.values():
            endpoint.record_events = False
            endpoint.on_cast = make_on_cast()

    def submit(key, endpoint):
        if not endpoint.process.stopped:
            pending[key] = sim.now
            endpoint.cast(("req", key), size=16)

    warm = PLANE_WARM_S
    for c in range(clients):
        key = "client:%d" % c
        shard = cluster.route(key)
        node = members[shard][c % nodes_per_shard]
        endpoint = cluster.shard_group(shard).endpoints[node]
        sim.schedule(warm + window * c / clients, submit, key, endpoint)

    start = sim.now + warm
    deadline = start + window + grace
    while sim.now < deadline and len(latencies) < clients:
        cluster.run(0.05)
    elapsed = sim.now - start
    result = {
        "clients": clients,
        "completed": len(latencies),
        "requests_per_s": len(latencies) / elapsed if elapsed > 0 else 0.0,
        "p99_ms": (percentile(latencies, 99) * 1000.0 if latencies
                   else None),
        "events": sim.events_processed,
    }
    cluster.stop()
    return result


# ----------------------------------------------------------------------
# migration: fenced-request latency across a live reshard
# ----------------------------------------------------------------------
def migration_latency(shards, nodes_per_shard, seed=7, keys=48,
                      steady_ops=96, max_migration_ops=600):
    """p99 request latency during a live reshard vs steady state.

    The plane boots with 3/4 of its groups on the ring; the benchmark
    runs an exactly-once increment workload through the epoch-stamping
    client (``ShardClient``), first against the quiet plane, then WHILE
    a scale-out migration streams key ranges onto the spare groups.
    The in-migration sample includes everything a real client pays at
    the seam: stale/early/wait fencing verdicts, re-route retries, and
    ops parked behind in-flight arcs.
    """
    ring_shards = max(1, (3 * shards) // 4)
    cluster = Cluster.create(shards=shards, nodes_per_shard=nodes_per_shard,
                             config=StackConfig.byz(total_order=True),
                             seed=seed, ring_shards=ring_shards)
    cluster.run_until_stable_views(10.0)
    sim = cluster.sim
    rsm = cluster.sharded_rsm()
    client = rsm.client("bench", timeout=1.5, attempts=40)
    key_names = ["mig:%d" % i for i in range(keys)]
    for key in key_names:
        client.set(key, 0)

    def run_ops(tag, count, alive=lambda: True):
        latencies = []
        issued = 0
        while issued < count and alive():
            key = key_names[issued % keys]
            t0 = sim.now
            status, _res = client.op(key, ("incr", key, 1),
                                     op_id=(tag, issued))
            if status == "ok":
                latencies.append(sim.now - t0)
            issued += 1
        return latencies

    steady = run_ops("steady", steady_ops)

    coordinator = cluster.resharder()

    def tick():   # advance the migration while client ops run the plane
        if coordinator.state == "migrating":
            coordinator.poll()
            sim.schedule(0.25, tick)

    sim.schedule(0.25, tick)
    coordinator.start(shards=shards)
    migrating = run_ops("mig", max_migration_ops,
                        alive=lambda: coordinator.state == "migrating")
    coordinator.run(timeout=60.0)
    metrics = coordinator.migration_metrics()
    p99_steady = percentile(steady, 99) if steady else None
    p99_mig = percentile(migrating, 99) if migrating else None
    result = {
        "ring_shards": ring_shards,
        "steady_ops": len(steady),
        "migration_ops": len(migrating),
        "p99_steady_ms": (round(p99_steady * 1000.0, 3)
                          if p99_steady is not None else None),
        "p99_migrating_ms": (round(p99_mig * 1000.0, 3)
                             if p99_mig is not None else None),
        "migration_slowdown": (round(p99_mig / p99_steady, 2)
                               if p99_steady and p99_mig else None),
        # fencing punishes ~1% of ops by orders of magnitude, so the
        # seam cost lives in the extreme tail; max makes it visible
        # even when p99 sits below the fenced fraction
        "max_steady_ms": (round(max(steady) * 1000.0, 3)
                          if steady else None),
        "max_migrating_ms": (round(max(migrating) * 1000.0, 3)
                             if migrating else None),
        "migration_s": (round(metrics["finished_at"]
                              - metrics["started_at"], 4)
                        if metrics["finished_at"] is not None else None),
        "keys_moved": metrics["keys_moved"],
        "fencing": metrics["fencing"],
        "migration_state": metrics["state"],
        "events": sim.events_processed,
    }
    cluster.stop()
    return result


# ----------------------------------------------------------------------
# suite
# ----------------------------------------------------------------------
def _point(workload, label, n, wall, result, **extra):
    events = result["events"]
    point = {
        "workload": workload,
        "label": label,
        "n": n,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": round(events / wall, 1),
    }
    point.update(extra)
    return point


def run_suite(quick=False, seed=7):
    sat = SAT_QUICK if quick else SAT_FULL
    singles = SINGLE_QUICK if quick else SINGLE_FULL
    swarms = CLIENTS_QUICK if quick else CLIENTS_FULL
    headline_plane, headline_n = HEADLINE_QUICK if quick else HEADLINE_FULL

    calib = calibrate()
    print("calibration loop: %.3fs" % calib, flush=True)
    points = []
    sat_rate = {}           # (shards, k) -> aggregate msgs/s
    single_rate = {}        # n -> msgs/s

    for shards, k in sat:
        start = time.perf_counter()
        result = plane_saturation(shards, k, seed=seed)
        wall = time.perf_counter() - start
        sat_rate[(shards, k)] = result["msgs_per_s"]
        points.append(_point(
            "saturation", "plane", shards * k, wall, result,
            shards=shards, nodes_per_shard=k,
            msgs_per_s=round(result["msgs_per_s"], 1),
            p99_ms=(round(result["p99_ms"], 3)
                    if result["p99_ms"] is not None else None)))
        print("saturation plane   %3dx%d %7.2fs wall  %9d events  "
              "%9.0f msgs/s" % (shards, k, wall, result["events"],
                                result["msgs_per_s"]), flush=True)

    for n in singles:
        start = time.perf_counter()
        result = single_group_saturation(n, seed=seed)
        wall = time.perf_counter() - start
        single_rate[n] = result["msgs_per_s"]
        points.append(_point(
            "saturation", "single", n, wall, result,
            msgs_per_s=round(result["msgs_per_s"], 1),
            p99_ms=(round(result["p99_ms"], 3)
                    if result["p99_ms"] is not None else None)))
        print("saturation single  n=%-3d %7.2fs wall  %9d events  "
              "%9.0f msgs/s" % (n, wall, result["events"],
                                result["msgs_per_s"]), flush=True)

    for shards, k, clients in swarms:
        start = time.perf_counter()
        result = client_swarm(shards, k, clients, seed=seed)
        wall = time.perf_counter() - start
        points.append(_point(
            "clients", "plane", shards * k, wall, result,
            shards=shards, nodes_per_shard=k, clients=clients,
            completed=result["completed"],
            requests_per_s=round(result["requests_per_s"], 1),
            p99_ms=(round(result["p99_ms"], 3)
                    if result["p99_ms"] is not None else None)))
        print("clients    plane   %3dx%d %7.2fs wall  %9d events  "
              "%6d/%d done  %8.0f req/s  p99 %.1f ms"
              % (shards, k, wall, result["events"], result["completed"],
                 clients, result["requests_per_s"],
                 result["p99_ms"] or float("nan")), flush=True)

    for shards, k in (MIG_QUICK if quick else MIG_FULL):
        start = time.perf_counter()
        result = migration_latency(shards, k, seed=seed)
        wall = time.perf_counter() - start
        points.append(_point(
            "migration", "plane", shards * k, wall, result,
            shards=shards, nodes_per_shard=k,
            ring_shards=result["ring_shards"],
            steady_ops=result["steady_ops"],
            migration_ops=result["migration_ops"],
            p99_steady_ms=result["p99_steady_ms"],
            p99_migrating_ms=result["p99_migrating_ms"],
            migration_slowdown=result["migration_slowdown"],
            max_steady_ms=result["max_steady_ms"],
            max_migrating_ms=result["max_migrating_ms"],
            migration_s=result["migration_s"],
            keys_moved=result["keys_moved"],
            fencing=result["fencing"],
            migration_state=result["migration_state"]))
        print("migration  plane   %3dx%d %7.2fs wall  %9d events  "
              "p99 %.1f ms steady -> %.1f ms migrating (%.1fx)  "
              "max %.1f -> %.1f ms  (%d keys moved, %s)"
              % (shards, k, wall, result["events"],
                 result["p99_steady_ms"] or float("nan"),
                 result["p99_migrating_ms"] or float("nan"),
                 result["migration_slowdown"] or float("nan"),
                 result["max_steady_ms"] or float("nan"),
                 result["max_migrating_ms"] or float("nan"),
                 result["keys_moved"], result["migration_state"]),
              flush=True)

    speedup = (sat_rate[headline_plane] / single_rate[headline_n]
               if single_rate.get(headline_n) else None)
    if speedup is not None:
        print("speedup: %dx%d plane vs single n=%d group: %.1fx aggregate "
              "msgs/s" % (headline_plane[0], headline_plane[1], headline_n,
                          speedup), flush=True)
    return {
        # schema 2: the "migration" workload family (p99 during a live
        # reshard vs steady state) joined "saturation"/"clients"
        "schema": 2,
        "quick": quick,
        "seed": seed,
        "calib_s": round(calib, 4),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "speedup_vs_single_group": (round(speedup, 2)
                                    if speedup is not None else None),
        "headline": {"plane": list(headline_plane), "single_n": headline_n},
        "workloads": points,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="16x5 plane vs 20-node monolith (CI "
                             "shard-smoke)")
    parser.add_argument("--out", default="BENCH_shards.json")
    parser.add_argument("--tag", default=None,
                        help="store the run under runs[TAG], merging with "
                             "an existing file instead of overwriting it")
    parser.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="fail if normalized events/sec regressed vs "
                             "this baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless the headline plane beats the "
                             "single group by at least this factor")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    current = run_suite(quick=args.quick, seed=args.seed)

    if args.tag:
        doc = {"schema": 1, "runs": {}}
        if os.path.exists(args.out):
            with open(args.out) as handle:
                doc = json.load(handle)
            doc.setdefault("runs", {})
        doc["runs"][args.tag] = current
    else:
        doc = current
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)

    status = 0
    if args.require_speedup is not None:
        speedup = current["speedup_vs_single_group"]
        if speedup is None or speedup < args.require_speedup:
            print("SPEEDUP REGRESSION: %.1fx < required %.1fx"
                  % (speedup or 0.0, args.require_speedup), file=sys.stderr)
            status = 1
        else:
            print("speedup check ok: %.1fx >= %.1fx"
                  % (speedup, args.require_speedup))
    if args.check_against:
        with open(args.check_against) as handle:
            baseline_doc = json.load(handle)
        regressions = check_against(current, baseline_doc, args.tolerance)
        if regressions:
            for line in regressions:
                print("PERF REGRESSION: %s" % line, file=sys.stderr)
            status = 1
        else:
            print("perf check ok: no point regressed more than %.0f%% "
                  "(normalized)" % (args.tolerance * 100))
    return status


if __name__ == "__main__":
    sys.exit(main())
