"""Micro-benchmark: wall-clock cost of the observability plane.

The plane must be a no-op when disabled: every hook site is a single
``obs is None`` branch, so the instrumented build may not tax the default
(obs-off) run.  This script measures the same deterministic ring workload
three ways -- obs off, metrics only, metrics+tracing -- and reports
wall-clock seconds and the simulated-result parity (which must be exact:
the plane never schedules events, draws randomness, or charges CPU).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--n 8] [--repeat 3]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro import Group, ObsConfig, StackConfig
from repro.apps.ring import RingDemo


def one_run(obs, n, seed=7, duration=0.3):
    config = StackConfig.byz(obs=obs)
    started = time.perf_counter()
    group = Group.bootstrap(n, config=config, seed=seed)
    ring = RingDemo(group, burst=16, msg_size=16)
    ring.start()
    group.run(duration)
    wall = time.perf_counter() - started
    result = (group.sim.events_processed, ring.deliveries,
              ring.min_rounds_completed())
    group.stop()
    return wall, result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8)
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)
    variants = [
        ("disabled", None),
        ("metrics only", ObsConfig(metrics=True, tracing=False)),
        ("metrics+tracing", ObsConfig(metrics=True, tracing=True)),
    ]
    results = {}
    for label, obs in variants:
        walls = []
        sim_result = None
        for _ in range(args.repeat):
            wall, result = one_run(obs, args.n)
            walls.append(wall)
            sim_result = result
        results[label] = (min(walls), sim_result)
        print("%-16s best of %d: %7.3f s  (events=%d deliveries=%d rounds=%d)"
              % (label, args.repeat, min(walls), *sim_result))
    base_wall, base_sim = results["disabled"]
    ok = all(sim == base_sim for _w, sim in results.values())
    print("simulated-result parity across variants: %s"
          % ("OK" if ok else "BROKEN"))
    for label, (wall, _sim) in results.items():
        if label != "disabled":
            print("%-16s overhead vs disabled: %+.1f%%"
                  % (label, 100.0 * (wall - base_wall) / base_wall))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
