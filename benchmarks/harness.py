"""Shared experiment runners for the paper's evaluation (section 4).

Every figure and table of the paper maps to one runner here; the
``bench_*`` modules wrap them for ``pytest-benchmark`` and
``run_all.py`` sweeps the full parameter ranges and regenerates
EXPERIMENTS.md.

Measurement methodology follows the paper:

* workload: the Ensemble Ring demo (each node casts a burst of k messages
  and waits for k messages from every other member);
* throughput: broadcasts delivered per second, a broadcast delivered to n
  nodes counting once (16-byte messages, Figures 5/7);
* latency: mean cast-to-delivery time with k = 1 (1-byte messages,
  Figure 6);
* view change: seconds from failure detection (or merge start) to the
  new view's installation (Figure 8, Table 1).

All times are simulated seconds on the BladeCenter topology model; see
DESIGN.md section 6 for the calibration story.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager

from repro import Group, ObsConfig, StackConfig
from repro.apps.ring import RingDemo
from repro.byzantine.behaviors import (BadViewCoordinator, MuteCoordinator,
                                       MuteNode, VerboseNode)
from repro.core.view import choose_coordinator
from repro.sim.stats import mean

#: group sizes measured in the paper (8-50, two per blade above 24)
FULL_SIZES = (8, 12, 16, 24, 32, 40, 48)
#: subset used by the pytest-benchmark wrappers to keep CI runs short
QUICK_SIZES = (8, 24, 40)

FIG5_CONFIGS = {
    "JazzEns": lambda: StackConfig.benign(),
    "ByzEns+NoCrypto": lambda: StackConfig.byz(),
    "ByzEns+SymCrypto": lambda: StackConfig.byz(crypto="sym"),
    "ByzEns+NoCrypto+Total": lambda: StackConfig.byz(total_order=True),
    "ByzEns+PubCrypto": lambda: StackConfig.byz(crypto="pub"),
}

FIG6_CONFIGS = {
    "JazzEns": lambda: StackConfig.benign(),
    "ByzEns+NoCrypto": lambda: StackConfig.byz(),
    "ByzEns+SymCrypto": lambda: StackConfig.byz(crypto="sym"),
    "ByzEns+NoCrypto+Total": lambda: StackConfig.byz(total_order=True),
}

FIG7_CONFIGS = {
    "NoCrypto+Total": lambda: StackConfig.byz(total_order=True),
    "NoCrypto+Uniform": lambda: StackConfig.byz(uniform_delivery=True),
    "NoCrypto+Total+Uniform": lambda: StackConfig.byz(
        total_order=True, uniform_delivery=True),
    "SymCrypto+Total": lambda: StackConfig.byz(crypto="sym",
                                               total_order=True),
    "SymCrypto+Uniform": lambda: StackConfig.byz(crypto="sym",
                                                 uniform_delivery=True),
    "SymCrypto+Total+Uniform": lambda: StackConfig.byz(
        crypto="sym", total_order=True, uniform_delivery=True),
}


@contextmanager
def steady_state_gc():
    """Freeze long-lived state out of the cyclic GC for a measured run.

    A bootstrapped n=50 group is hundreds of thousands of live objects
    (processes, layers, archives), and CPython's collector rescans them
    on every generational pass triggered by steady-state allocation --
    per-event GC cost grows with group size even though per-event garbage
    does not (docs/PERFORMANCE.md, "The CPU path").  Freezing the
    bootstrap graph and widening gen-0 removes that O(live heap) term
    from the measurement; simulated histories are unaffected (the
    collector never changes observable behavior).  Thresholds and the
    frozen set are restored on exit so benchmark points stay independent.
    """
    gc.collect()
    gc.freeze()
    old = gc.get_threshold()
    gc.set_threshold(50000, old[1], old[2])
    try:
        yield
    finally:
        gc.set_threshold(*old)
        gc.unfreeze()
        gc.collect()


# ----------------------------------------------------------------------
# Figures 5 and 7: throughput
# ----------------------------------------------------------------------
def ring_throughput(config, n, seed=7, burst=None, warm=None, measure=None,
                    msg_size=16, obs_export=None):
    """Ring-demo throughput for one (config, n) point.

    Windows shrink with n so each point costs a roughly constant number of
    simulated datagrams; PubCrypto gets long windows (its event rate is
    tiny) and a small burst (a large one would never complete a round).

    With ``obs_export`` set to a path, the run is executed with the
    observability plane enabled and its metrics+traces artifact is written
    there as JSON (the simulated results are identical either way: the
    plane never schedules events, draws randomness, or charges CPU).
    """
    if obs_export is not None and not config.obs:
        config = config.clone(obs=ObsConfig())
    if config.crypto == "pub":
        burst = burst or 2
        warm = warm if warm is not None else 1.0
        measure = measure or 3.0
    elif config.uniform_delivery and not config.total_order:
        # per-cast uniform agreement is slow by design (the paper could
        # not batch it either); it needs wider windows to complete rounds
        burst = burst or 8
        warm = warm if warm is not None else 0.25
        measure = measure or 0.4
    else:
        burst = burst or 16
        warm = warm if warm is not None else max(0.05, 0.4 / n)
        measure = measure or max(0.1, 1.6 / n)
    group = Group.bootstrap(n, config=config, seed=seed)
    ring = RingDemo(group, burst=burst, msg_size=msg_size)
    ring.start()
    with steady_state_gc():
        group.run(warm)
        ring.start_measurement()
        group.run(measure)
        ring.stop_measurement()
    view_changes = max(p.membership.view_changes
                       for p in group.processes.values())
    result = {
        "label": config.label(),
        "n": n,
        "throughput": ring.throughput,
        "rounds": ring.min_rounds_completed(),
        "view_changes": view_changes,
        "sim_seconds": measure,
        "events": group.sim.events_processed,
    }
    if obs_export is not None:
        group.export_obs(obs_export)
        metrics = group.metrics
        result["obs"] = {
            "artifact": obs_export,
            "casts_sent": metrics.total("casts_sent", layer="top"),
            "casts_delivered": metrics.total("casts_delivered", layer="top"),
            "datagrams": metrics.total("datagrams_out", layer="net"),
            "traces": len(group.obs.tracer.traces) if group.obs.tracer else 0,
        }
    group.stop()
    return result


# ----------------------------------------------------------------------
# Figure 6: latency of 1-byte messages
# ----------------------------------------------------------------------
def ring_latency(config, n, seed=7, duration=None):
    """Mean cast-to-delivery latency with burst k = 1 (paper Figure 6)."""
    group = Group.bootstrap(n, config=config, seed=seed)
    ring = RingDemo(group, burst=1, msg_size=1, warmup_rounds=3)
    ring.start()
    group.run(duration if duration is not None else max(0.2, 2.0 / n))
    result = {
        "label": config.label(),
        "n": n,
        "latency_ms": ring.latency.mean * 1000.0,
        "p99_ms": ring.latency.p99 * 1000.0,
        "rounds": ring.min_rounds_completed(),
        "events": group.sim.events_processed,
    }
    group.stop()
    return result


# ----------------------------------------------------------------------
# ordering fast path: open-loop cast->deliver latency
# ----------------------------------------------------------------------
#: per-n cast interval for the moderate-load point of the fast-path
#: latency benchmark: high enough that the classic (tick-gated,
#: sequential) ordering path queues, low enough that the pipelined fast
#: path still absorbs the rate.  Intervals deliberately avoid multiples
#: of the 2 ms ordering tick so arrivals don't alias with it.
ORDERING_LOAD_INTERVALS = {8: 0.0033, 16: 0.0053, 32: 0.0093}


def ordering_latency(config, n, seed=7, duration=0.4, casters=4,
                     interval=None):
    """Failure-free cast->deliver latency under an open-loop cast load.

    ``casters`` members each cast a 16-byte message every ``interval``
    simulated seconds (open loop: the next cast is scheduled whether or
    not the previous one was delivered, unlike the closed-loop ring demo
    whose rounds self-throttle to the ordering rate).  Latency is
    measured at one observer node from cast time to total-order
    delivery; decides/s comes from the ordering layer's own counter.
    """
    if interval is None:
        interval = ORDERING_LOAD_INTERVALS.get(
            n, ORDERING_LOAD_INTERVALS[32])
    group = Group.bootstrap(n, config=config, seed=seed)
    latencies = []
    cast_times = {}

    def observer(event):
        t0 = cast_times.get(event.msg_id)
        if t0 is not None:
            latencies.append(event.time - t0)

    for node, endpoint in group.endpoints.items():
        endpoint.record_events = False
        if node == 0:
            endpoint.on_cast = observer
        else:
            endpoint.on_cast = lambda event: None
    endpoints = list(group.endpoints.values())

    def caster(i):
        msg_id = endpoints[i].cast(("load", i), size=16)
        cast_times[msg_id] = group.sim.now
        group.sim.schedule(interval, caster, i)

    # stagger the casters off each other and off the tick grid
    for i in range(casters):
        group.sim.schedule(0.0011 * (i + 1), caster, i)
    with steady_state_gc():
        group.run(duration)
    ordering = group.processes[0].stack.layer("ordering")
    decides = ordering.batches_decided
    fast_decides = getattr(ordering, "fast_decides", 0)
    fast_fallbacks = getattr(ordering, "fast_fallbacks", 0)
    events = group.sim.events_processed
    group.stop()
    latencies.sort()
    count = len(latencies)

    def pct(q):
        if not count:
            return float("nan")
        return latencies[min(count - 1, int(count * q))] * 1000.0

    return {
        "label": config.label(),
        "n": n,
        "p50_ms": pct(0.50),
        "p99_ms": pct(0.99),
        "mean_ms": (sum(latencies) / count * 1000.0) if count else
                   float("nan"),
        "delivered": count,
        "cast": len(cast_times),
        "decides_per_s": decides / duration,
        "fast_decides": fast_decides,
        "fast_fallbacks": fast_fallbacks,
        "sim_seconds": duration,
        "events": events,
    }


# ----------------------------------------------------------------------
# Figure 8: time to establish a new view
# ----------------------------------------------------------------------
def view_change_latency(n, kind, seed=7, config=None):
    """Seconds from the triggering event to the new view (Figure 8).

    ``kind`` is ``"leave"`` (a member departs; measured from the leave
    announcement) or ``"merge"`` (a singleton joins; measured from the
    merge request reaching the coordinator).
    """
    config = config or StackConfig.byz()
    if kind == "leave":
        group = Group.bootstrap(n, config=config, seed=seed)
        with steady_state_gc():
            group.run(0.05)
            group.endpoints[n - 1].leave()
            survivors = [node for node in group.processes if node != n - 1]
            ok = group.run_until(
                lambda: all(p.view.n == n - 1
                            for node, p in group.processes.items()
                            if node != n - 1), timeout=10.0)
    elif kind == "merge":
        # n-1 established members; a fresh node joins mid-run
        group = Group.bootstrap(n - 1, config=config, seed=seed)
        with steady_state_gc():
            group.run(0.05)
            group.add_node(n - 1)
            survivors = [node for node in group.processes if node != n - 1]
            ok = group.run_until(
                lambda: all(p.view.n == n for p in group.processes.values()),
                timeout=10.0)
    else:
        raise ValueError("unknown view-change kind: %r" % (kind,))
    # as in the paper, the clock starts when the event is *known* (leave
    # received / merge request accepted), not when it physically happened
    durations = [group.processes[node].membership.last_change_duration
                 for node in survivors
                 if group.processes[node].membership.last_change_duration]
    elapsed = mean(durations) if (ok and durations) else float("nan")
    result = {"n": n, "kind": kind, "seconds": elapsed, "converged": ok,
              "events": group.sim.events_processed}
    group.stop()
    return result


# ----------------------------------------------------------------------
# Table 1: recovery time from problematic scenarios
# ----------------------------------------------------------------------
def _recovery_run(n, seed, behaviors, exclude, detect_event=None,
                  config=None):
    """Run a fault scenario; return detection->install recovery time.

    Following the paper, the time reported EXCLUDES the failure-detection
    period itself ("does not include the failure detection time as this is
    a tunable parameter"): we take the latest change-start among survivors
    as the detection instant.
    """
    config = config or StackConfig.byz()
    group = Group.bootstrap(n, config=config, seed=seed, behaviors=behaviors)
    group.run(0.05)
    if detect_event is not None:
        detect_event(group)
    ok = group.run_until(
        lambda: all(exclude not in p.view.mbrs
                    for node, p in group.processes.items()
                    if node != exclude and not p.stopped),
        timeout=10.0)
    durations = [p.membership.last_change_duration
                 for node, p in group.processes.items()
                 if node != exclude and not p.stopped
                 and p.membership.last_change_duration is not None]
    group.stop()
    return {
        "recovered": ok,
        "recovery_seconds": mean(durations) if durations else float("nan"),
        "max_recovery_seconds": max(durations) if durations else float("nan"),
    }


def recovery_time(scenario, n=12, seed=7):
    """Table 1: recovery time for one named scenario at group size n."""
    if scenario == "ByzLeave":
        def leave(group):
            group.endpoints[n - 1].leave()
        return _recovery_run(n, seed, {}, exclude=n - 1, detect_event=leave)
    if scenario == "ByzMuteNode":
        return _recovery_run(n, seed, {n - 1: MuteNode(mute_at=0.08)},
                             exclude=n - 1)
    if scenario == "ByzMuteCoord":
        coord = choose_coordinator(1, tuple(range(n)))
        return _recovery_run(n, seed, {coord: MuteCoordinator(mute_at=0.08)},
                             exclude=coord)
    if scenario == "ByzVerboseNode":
        return _recovery_run(n, seed, {n - 1: VerboseNode(start_at=0.08)},
                             exclude=n - 1)
    if scenario == "CoordBadView":
        # crash one node so a view change runs; its generator is Byzantine
        # and sends a wrong view, forcing a re-run that also evicts it
        survivors = [m for m in range(n) if m != n - 1]
        bad_gen = choose_coordinator(1, survivors)
        behaviors = {bad_gen: BadViewCoordinator()}

        def crash(group):
            group.crash(n - 1)
        return _recovery_run(n, seed, behaviors, exclude=bad_gen,
                             detect_event=crash)
    raise ValueError("unknown scenario: %r" % (scenario,))


TABLE1_SCENARIOS = ("ByzLeave", "ByzMuteNode", "ByzMuteCoord",
                    "ByzVerboseNode", "CoordBadView")
