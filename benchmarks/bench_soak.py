"""Soak-plane throughput benchmark: simulated events per wall-second.

The nightly soak budget is wall-clock bound (~10 minutes), so the figure
of merit is how many simulated churn events one soak cycle grinds through
per second of real time.  This script runs short deterministic soaks
across cluster sizes and reports events/sec plus per-cycle recovery
statistics; with ``--out`` it writes a JSON artifact in the same shape as
the other benchmark scripts.

Usage::

    PYTHONPATH=src python benchmarks/bench_soak.py [--sizes 5,6,8]
        [--events 150000] [--seed 7] [--out bench_soak.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.tournament import run_soak


def one_soak(n, events, seed):
    started = time.perf_counter()
    report = run_soak(seed, n=n, target_events=events)
    wall = time.perf_counter() - started
    return {
        "n": n,
        "seed": seed,
        "target_events": events,
        "events_processed": report["events_processed"],
        "cycles": report["cycles"],
        "sim_time": report["sim_time"],
        "verdict": report["verdict"],
        "byzantine_episodes": report["byzantine_episodes"],
        "recovery_max": report["recovery"]["max"],
        "recovery_mean": report["recovery"]["mean"],
        "wall_seconds": round(wall, 3),
        "events_per_sec": round(report["events_processed"] / wall, 1),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default="5,6,8",
                        help="comma-separated cluster sizes")
    parser.add_argument("--events", type=int, default=150_000,
                        help="target simulated events per soak point")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    sizes = [int(token) for token in args.sizes.split(",")]

    points = []
    print("%4s %10s %8s %8s %10s %12s %8s"
          % ("n", "events", "cycles", "sim s", "wall s", "events/s",
             "verdict"))
    for n in sizes:
        point = one_soak(n, args.events, args.seed)
        points.append(point)
        print("%4d %10d %8d %8.1f %10.2f %12.0f %8s"
              % (point["n"], point["events_processed"], point["cycles"],
                 point["sim_time"], point["wall_seconds"],
                 point["events_per_sec"], point["verdict"]))

    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"bench": "soak", "seed": args.seed,
                       "points": points}, handle, indent=2)
        print("written to %s" % args.out)
    return 0 if all(p["verdict"] == "pass" for p in points) else 1


if __name__ == "__main__":
    sys.exit(main())
