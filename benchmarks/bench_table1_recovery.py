"""Table 1: recovery time from problematic scenarios (n = 12).

Paper rows (times from detection to new-view installation, excluding the
tunable detection timeout itself):

    ByzLeave        0.013 s     member announces leave and departs
    ByzMuteNode     0.015 s     a node goes completely mute
    ByzMuteCoord    0.018 s     the coordinator goes mute
    ByzVerboseNode  0.016 s     a node slanders everyone constantly
    CoordBadView    0.014 s     the view generator sends a wrong view

Expected shape: every scenario recovers in the same few-tens-of-
milliseconds band; the differences come from whether all nodes start the
consensus roughly together and with the same value.
"""

import pytest

from benchmarks.harness import TABLE1_SCENARIOS, recovery_time


@pytest.mark.parametrize("scenario", TABLE1_SCENARIOS)
def test_table1_recovery(benchmark, scenario):
    result = benchmark.pedantic(
        lambda: recovery_time(scenario, n=12), rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    benchmark.extra_info["scenario"] = scenario
    assert result["recovered"], scenario
    # the paper's band is ~13-18 ms; ours must stay in the same regime
    assert result["recovery_seconds"] < 0.25, (scenario, result)


def test_table1_shape_all_scenarios_same_band():
    """All five recovery times sit within one order of magnitude."""
    times = {s: recovery_time(s, n=12)["recovery_seconds"]
             for s in TABLE1_SCENARIOS}
    low, high = min(times.values()), max(times.values())
    assert high <= 40 * low, times


def test_table1_shape_scales_to_50_nodes():
    """At n=50 the paper reports up to ~350 ms, dominated by view
    synchronization; ours must stay sub-second and exceed the n=12 time."""
    small = recovery_time("ByzMuteNode", n=12)
    large = recovery_time("ByzMuteNode", n=48)
    assert large["recovered"]
    assert large["recovery_seconds"] < 1.0
    assert large["recovery_seconds"] > small["recovery_seconds"] * 0.5
