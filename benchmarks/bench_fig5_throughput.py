"""Figure 5: throughput of 16-byte messages vs group size.

Paper lines: JazzEns, ByzEns+NoCrypto, ByzEns+SymCrypto,
ByzEns+NoCrypto+Total, ByzEns+PubCrypto(512 bits).

Expected shape (paper, section 4): 40-50k msgs/s without crypto;
NoCrypto at ~85-90% of JazzEns; SymCrypto about half; PubCrypto a few
dozen msgs/s ("hardly visible, as it is so close to 0"); Total lower
than plain with an extra drop above 24 nodes (shared NICs).

The pytest wrappers measure a QUICK_SIZES subset; ``run_all.py`` sweeps
FULL_SIZES and regenerates the EXPERIMENTS.md table.
"""

import pytest

from benchmarks.harness import FIG5_CONFIGS, QUICK_SIZES, ring_throughput


@pytest.mark.parametrize("n", QUICK_SIZES)
@pytest.mark.parametrize("label", sorted(FIG5_CONFIGS))
def test_fig5_throughput(benchmark, label, n):
    config = FIG5_CONFIGS[label]()
    if config.crypto == "pub" and n > 8:
        pytest.skip("PubCrypto line is flat near zero; one size suffices")

    result = benchmark.pedantic(
        lambda: ring_throughput(config, n), rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["view_changes"] == 0, "spurious view change during bench"
    assert result["throughput"] > 0


def test_fig5_shape_nocrypto_within_paper_band():
    """ByzEns+NoCrypto ~= 85-90% of JazzEns (paper section 4)."""
    base = ring_throughput(FIG5_CONFIGS["JazzEns"](), 8)
    hardened = ring_throughput(FIG5_CONFIGS["ByzEns+NoCrypto"](), 8)
    ratio = hardened["throughput"] / base["throughput"]
    assert 0.80 <= ratio <= 0.95, ratio


def test_fig5_shape_symcrypto_about_half():
    """SymCrypto reduces throughput by about half (paper section 4)."""
    base = ring_throughput(FIG5_CONFIGS["ByzEns+NoCrypto"](), 8)
    sym = ring_throughput(FIG5_CONFIGS["ByzEns+SymCrypto"](), 8)
    ratio = sym["throughput"] / base["throughput"]
    assert 0.35 <= ratio <= 0.65, ratio


def test_fig5_shape_pubcrypto_near_zero():
    """PubCrypto drops to a few dozen msgs/s -- 'almost useless'."""
    pub = ring_throughput(FIG5_CONFIGS["ByzEns+PubCrypto"](), 8)
    assert pub["throughput"] < 200, pub["throughput"]


def test_fig5_shape_total_below_plain():
    plain = ring_throughput(FIG5_CONFIGS["ByzEns+NoCrypto"](), 8)
    total = ring_throughput(FIG5_CONFIGS["ByzEns+NoCrypto+Total"](), 8)
    assert total["throughput"] < plain["throughput"]
