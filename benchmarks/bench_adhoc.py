"""Benches for the MANET extension (paper section 6).

Quantifies the two claims behind the named future work:

1. **Gossip stability scales**: rounds to full stability knowledge grow
   ~logarithmically in n and per-node message cost stays flat, versus the
   wired scheme's O(n) ack broadcasts per member per interval.
2. **Byzantine routing masks droppers**: delivery stays complete with a
   dropping relay as long as a disjoint path exists.
3. The full stack's broadcast latency over multi-hop radio grows with the
   network diameter, not the member count.
"""

import pytest

from repro import Group, StackConfig
from repro.adhoc.geometry import Field
from repro.adhoc.gossip_stability import simulate_convergence


@pytest.mark.parametrize("n", (8, 16, 32, 64))
def test_adhoc_gossip_stability_scaling(benchmark, n):
    result = benchmark.pedantic(
        lambda: simulate_convergence(n, seed=11, fanout=2),
        rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    benchmark.extra_info["n"] = n
    assert result["converged"]
    # per-node message cost must not grow linearly in n (the wired ack
    # broadcast costs n-1 datagrams per member per interval)
    assert result["messages_per_node"] < n


def test_adhoc_gossip_vs_broadcast_message_cost():
    small = simulate_convergence(8, seed=12)
    large = simulate_convergence(64, seed=12)
    assert small["converged"] and large["converged"]
    # broadcast ack cost grows 8x (n-1 per member); gossip per-node cost
    # grows only with log n
    growth = large["messages_per_node"] / max(1.0, small["messages_per_node"])
    assert growth < 4.0, growth


def test_adhoc_dropping_relay_delivery(benchmark):
    def run():
        field = Field(radio_range=0.4)
        field.place_grid(range(9), cols=3)
        group = Group.bootstrap_adhoc(9, config=StackConfig.byz(), seed=13,
                                      field=field)
        group.network.set_dropping_relays({4})
        for k in range(5):
            group.endpoints[0].cast(("b", k))
        group.run(4.0)
        delivered = min(
            len([e for e in group.endpoints[n].events
                 if type(e).__name__ == "CastDeliver"])
            for n in range(9))
        group.stop()
        return {"min_delivered": delivered,
                "relay_drops": group.network.dropped_by_relay}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["min_delivered"] == 5
    assert result["relay_drops"] > 0


@pytest.mark.parametrize("diameter", (2, 4, 8))
def test_adhoc_latency_tracks_diameter(benchmark, diameter):
    def run():
        field = Field(radio_range=0.12)
        spacing = 0.1
        for i in range(diameter + 1):
            field.place(i, 0.05 + i * spacing, 0.5)
        group = Group.bootstrap_adhoc(diameter + 1,
                                      config=StackConfig.byz(),
                                      seed=14, field=field)
        start = group.sim.now
        group.endpoints[0].cast("probe")
        group.run_until(
            lambda: any(e.payload == "probe"
                        for e in group.endpoints[diameter].events
                        if type(e).__name__ == "CastDeliver"),
            timeout=5.0)
        elapsed = group.sim.now - start
        group.stop()
        return {"diameter": diameter, "latency_s": elapsed}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    # at least one radio airtime per hop
    assert result["latency_s"] >= diameter * 1.0e-3
