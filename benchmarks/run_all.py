"""Regenerate every table and figure of the paper's evaluation.

Usage::

    python benchmarks/run_all.py [--quick] [--out EXPERIMENTS.md]

Sweeps the full parameter ranges (FULL_SIZES; --quick uses QUICK_SIZES),
prints the paper-shaped tables as it goes, and writes EXPERIMENTS.md with
a paper-vs-measured comparison for Figures 5-8 and Table 1.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.harness import (FIG5_CONFIGS, FIG6_CONFIGS, FIG7_CONFIGS,
                                FULL_SIZES, QUICK_SIZES, TABLE1_SCENARIOS,
                                recovery_time, ring_latency, ring_throughput,
                                view_change_latency)
from repro.crypto.cost import CryptoCostModel
from repro.sim.topology import BladeCenterTopology, HostModel
from repro.tools.ascii_chart import chart_block

PAPER_TABLE1 = {
    "ByzLeave": 0.013,
    "ByzMuteNode": 0.015,
    "ByzMuteCoord": 0.018,
    "ByzVerboseNode": 0.016,
    "CoordBadView": 0.014,
}


def fmt_row(cells, widths):
    return "| " + " | ".join(str(c).ljust(w) for c, w in zip(cells, widths)) + " |"


def sweep_fig5(sizes, log):
    log("\n## Figure 5 — throughput of 16-byte messages vs group size\n")
    labels = list(FIG5_CONFIGS)
    table = {}
    for label in labels:
        for n in sizes:
            if label == "ByzEns+PubCrypto" and n > min(sizes):
                table[(label, n)] = table[(label, min(sizes))]
                continue
            result = ring_throughput(FIG5_CONFIGS[label](), n)
            table[(label, n)] = result["throughput"]
            print("fig5 %-24s n=%-3d %9.0f msg/s" %
                  (label, n, result["throughput"]), flush=True)
    widths = [24] + [9] * len(sizes)
    log(fmt_row(["msgs/s"] + ["n=%d" % n for n in sizes], widths))
    log(fmt_row(["---"] * (len(sizes) + 1), widths))
    for label in labels:
        log(fmt_row([label] + ["%.0f" % table[(label, n)] for n in sizes],
                    widths))
    log("")
    log(chart_block({label: [(n, table[(label, n)]) for n in sizes]
                     for label in labels},
                    title="Figure 5: throughput (msgs/s) vs group size",
                    x_label="group size"))
    log("")
    log("Paper: 40-50k msg/s crypto-free envelope; ByzEns+NoCrypto at "
        "85-90% of JazzEns; SymCrypto about half; PubCrypto a few dozen "
        "(flat near zero); Total below plain, dipping further past 24 "
        "nodes (shared NICs).")
    return table


def sweep_fig6(sizes, log):
    log("\n## Figure 6 — latency of 1-byte messages vs group size\n")
    labels = list(FIG6_CONFIGS)
    table = {}
    for label in labels:
        for n in sizes:
            result = ring_latency(FIG6_CONFIGS[label](), n)
            table[(label, n)] = result["latency_ms"]
            print("fig6 %-24s n=%-3d %7.3f ms" %
                  (label, n, result["latency_ms"]), flush=True)
    widths = [24] + [8] * len(sizes)
    log(fmt_row(["ms"] + ["n=%d" % n for n in sizes], widths))
    log(fmt_row(["---"] * (len(sizes) + 1), widths))
    for label in labels:
        log(fmt_row([label] + ["%.3f" % table[(label, n)] for n in sizes],
                    widths))
    log("")
    log(chart_block({label: [(n, table[(label, n)]) for n in sizes]
                     for label in labels},
                    title="Figure 6: latency (ms) vs group size",
                    x_label="group size", y_format="{:.1f}"))
    log("")
    log("Paper: ~1-10 ms band, growing with n; SymCrypto above NoCrypto "
        "(n-1 MACs per cast); Total adds a consensus round.")
    return table


def sweep_fig7(sizes, log):
    log("\n## Figure 7 — total ordering and uniform broadcast throughput\n")
    labels = list(FIG7_CONFIGS)
    sizes = tuple(n for n in sizes if n <= 44) or sizes  # paper stops at 44
    table = {}
    for label in labels:
        for n in sizes:
            result = ring_throughput(FIG7_CONFIGS[label](), n)
            table[(label, n)] = result["throughput"]
            print("fig7 %-26s n=%-3d %9.0f msg/s" %
                  (label, n, result["throughput"]), flush=True)
    widths = [26] + [9] * len(sizes)
    log(fmt_row(["msgs/s"] + ["n=%d" % n for n in sizes], widths))
    log(fmt_row(["---"] * (len(sizes) + 1), widths))
    for label in labels:
        log(fmt_row([label] + ["%.0f" % table[(label, n)] for n in sizes],
                    widths))
    log("")
    log(chart_block({label: [(n, table[(label, n)]) for n in sizes]
                     for label in labels},
                    title="Figure 7: ordered/uniform throughput (msgs/s)",
                    x_label="group size"))
    log("")
    log("Paper: Total above Uniform (consensus amortizes over batches; "
        "uniform pays per message and could not be batched); SymCrypto "
        "roughly halves both; linear-looking decay in n on the switched "
        "network.  The reproduction's Uniform lines decay more steeply: "
        "its per-cast echo storm costs O(n^2) datagrams on a CPU-bound "
        "model, where the paper's NIC-bound testbed flattened part of "
        "that cost.  Total+Uniform coincides with Total by construction: "
        "consensus on full message contents already yields uniform "
        "agreement (paper section 3.5), so the uniform layer idles.")
    return table


def sweep_fig8(sizes, log):
    log("\n## Figure 8 — time to establish a new view\n")
    table = {}
    for kind in ("merge", "leave"):
        for n in sizes:
            result = view_change_latency(n, kind)
            table[(kind, n)] = result["seconds"]
            print("fig8 %-6s n=%-3d %7.4f s (converged=%s)" %
                  (kind, n, result["seconds"], result["converged"]),
                  flush=True)
    widths = [14] + [9] * len(sizes)
    log(fmt_row(["seconds"] + ["n=%d" % n for n in sizes], widths))
    log(fmt_row(["---"] * (len(sizes) + 1), widths))
    for kind in ("merge", "leave"):
        log(fmt_row(["%s->init" % kind]
                    + ["%.4f" % table[(kind, n)] for n in sizes], widths))
    log("")
    log(chart_block({kind: [(n, table[(kind, n)] * 1000.0) for n in sizes]
                     for kind in ("merge", "leave")},
                    title="Figure 8: view establishment (ms) vs group size",
                    x_label="group size", y_format="{:.1f}"))
    log("")
    log("Paper: sub-second, growing with view size toward ~0.35 s at "
        "n=50; merge and leave roughly equal (the reproduction's absolute "
        "times are smaller: its simulated LAN round-trips are faster than "
        "the real cluster's, and the same agreement dominates both).")
    return table


def sweep_table1(log):
    log("\n## Table 1 — recovery time from problematic scenarios (n=12)\n")
    widths = [16, 12, 12, 10]
    log(fmt_row(["Scenario", "paper (s)", "measured (s)", "recovered"],
                widths))
    log(fmt_row(["---"] * 4, widths))
    table = {}
    for scenario in TABLE1_SCENARIOS:
        result = recovery_time(scenario, n=12)
        table[scenario] = result
        print("table1 %-16s %7.4f s (recovered=%s)" %
              (scenario, result["recovery_seconds"], result["recovered"]),
              flush=True)
        log(fmt_row([scenario,
                     "%.3f" % PAPER_TABLE1[scenario],
                     "%.4f" % result["recovery_seconds"],
                     result["recovered"]], widths))
    log("")
    log("Paper: all five scenarios recover in a tight 13-18 ms band; the "
        "reproduction's band is tighter and faster (the simulated LAN has "
        "lower latency and less jitter) but equally uniform across the "
        "first four scenarios -- the finding being that recovery cost is "
        "dominated by the agreement itself, not the failure type.  "
        "CoordBadView reads higher here because the measured window "
        "includes the *rejected* first attempt (members refuse to echo "
        "the wrong view, suspect its generator, and re-run the change), "
        "which the paper appears to exclude.")
    return table


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use the small size grid")
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument("--obs-out", default=None, metavar="PATH",
                        help="also run one observability-instrumented point "
                             "and write its metrics+traces JSON artifact")
    parser.add_argument("--wallclock", default=None, metavar="PATH",
                        help="also run the wall-clock (host-speed) benchmark "
                             "and store it under runs['after'] of this JSON "
                             "(see benchmarks/bench_wallclock.py)")
    parser.add_argument("--latency", default=None, metavar="PATH",
                        help="also run the ordering-latency benchmark "
                             "(fast path on/off + fig6 ring lines) and "
                             "store it under runs['after'] of this JSON "
                             "(see benchmarks/bench_latency.py)")
    parser.add_argument("--net", default=None, metavar="PATH",
                        help="also run the localhost UDP cluster benchmark "
                             "(real OS processes + sockets) and write its "
                             "net-vs-sim JSON here "
                             "(see benchmarks/bench_net_localhost.py)")
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    lines = []
    log = lines.append
    log("# EXPERIMENTS — paper vs measured")
    log("")
    log("Regenerated by `python benchmarks/run_all.py%s`."
        % (" --quick" if args.quick else ""))
    log("")
    log("All numbers are **simulated** seconds/messages on the BladeCenter")
    log("topology model; absolute values are calibrated once (constants")
    log("below), relative factors and curve shapes are emergent.  See")
    log("DESIGN.md section 6 for the substitution rationale.")
    log("")
    log("* host model: send/recv CPU %.1f/%.1f us per datagram, +%.1f us "
        "Byzantine checks" % (HostModel().send_cpu * 1e6,
                              HostModel().recv_cpu * 1e6,
                              HostModel().byz_check_cpu * 1e6))
    costs = CryptoCostModel()
    log("* crypto cost table: %s" % costs.describe())
    log("* topology: %s" % BladeCenterTopology(48).describe())
    sweep_fig5(sizes, log)
    sweep_fig6(sizes, log)
    sweep_fig7(sizes, log)
    sweep_fig8(sizes, log)
    sweep_table1(log)
    if args.obs_out:
        result = ring_throughput(FIG5_CONFIGS["ByzEns+NoCrypto"](),
                                 min(sizes), obs_export=args.obs_out)
        print("obs artifact: %s (%d traces, %d casts delivered)"
              % (args.obs_out, result["obs"]["traces"],
                 result["obs"]["casts_delivered"]))
    if args.wallclock:
        from benchmarks import bench_wallclock
        bench_wallclock.main((["--quick"] if args.quick else [])
                             + ["--out", args.wallclock, "--tag", "after"])
    if args.latency:
        from benchmarks import bench_latency
        bench_latency.main((["--quick"] if args.quick else [])
                           + ["--out", args.latency, "--tag", "after"])
    if args.net:
        from benchmarks import bench_net_localhost
        bench_net_localhost.main((["--quick"] if args.quick else [])
                                 + ["--out", args.net])
    text = "\n".join(lines) + "\n"
    with open(args.out, "w") as handle:
        handle.write(text)
    print("\nwrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
