"""Figure 7: throughput of total ordering and uniform broadcast, with and
without symmetric-key cryptography (up to 44 nodes in the paper -- six of
their blades were lost to a UPS malfunction).

Expected shape: Total > Uniform (consensus amortizes agreement over
batches; uniform pays one agreement per message -- the paper could not
batch it "due to a bug in JazzEnsemble", and neither do we);
SymCrypto roughly halves both; decay looks linear in n because the
network is switched (per-link load grows O(n)).
"""

import pytest

from benchmarks.harness import FIG7_CONFIGS, ring_throughput

FIG7_QUICK_SIZES = (8, 24, 40)


@pytest.mark.parametrize("n", FIG7_QUICK_SIZES)
@pytest.mark.parametrize("label", sorted(FIG7_CONFIGS))
def test_fig7_throughput(benchmark, label, n):
    config = FIG7_CONFIGS[label]()
    result = benchmark.pedantic(
        lambda: ring_throughput(config, n), rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["throughput"] > 0


def test_fig7_shape_total_beats_uniform():
    """Consensus amortizes over batches; per-cast uniform cannot."""
    total = ring_throughput(FIG7_CONFIGS["NoCrypto+Total"](), 8)
    uniform = ring_throughput(FIG7_CONFIGS["NoCrypto+Uniform"](), 8)
    assert total["throughput"] > uniform["throughput"]


def test_fig7_shape_symcrypto_halves_total():
    plain = ring_throughput(FIG7_CONFIGS["NoCrypto+Total"](), 8)
    sym = ring_throughput(FIG7_CONFIGS["SymCrypto+Total"](), 8)
    ratio = sym["throughput"] / plain["throughput"]
    assert 0.3 <= ratio <= 0.7, ratio


def test_fig7_shape_throughput_decays_with_n():
    small = ring_throughput(FIG7_CONFIGS["NoCrypto+Total"](), 8)
    large = ring_throughput(FIG7_CONFIGS["NoCrypto+Total"](), 40)
    assert large["throughput"] < small["throughput"]


def test_fig7_total_plus_uniform_not_above_total():
    both = ring_throughput(FIG7_CONFIGS["NoCrypto+Total+Uniform"](), 8)
    total = ring_throughput(FIG7_CONFIGS["NoCrypto+Total"](), 8)
    # total ordering already subsumes uniform agreement; the combined
    # configuration must not outperform plain total ordering
    assert both["throughput"] <= total["throughput"] * 1.1
