"""Wall-clock (host) performance of the simulator's hot paths.

Every other benchmark in this directory reports *simulated* seconds; this
one measures how fast the simulation itself runs on the host, so perf
regressions in the Python hot paths (encoding, MACs, fan-out, the event
loop) are caught even though they never change a simulated outcome.

Workloads are the paper-shaped ones that stress the hot paths:

* ``fig5``  -- ring throughput (16-byte casts) for the NoCrypto and
  SymCrypto Byzantine stacks; sym crypto exercises the per-receiver MAC
  vector, the dominant cost the paper optimizes for the common case;
* ``fig8``  -- a view change (merge and leave), exercising the
  membership/consensus layers rather than steady-state traffic.

For each point the benchmark records wall seconds, simulated events
processed, and **events per wall second** -- the machine-level figure of
merit tracked across PRs in ``BENCH_wallclock.json``.

Because absolute events/sec depends on the host, every run also times a
fixed pure-Python calibration loop (``calib_s``).  Comparisons between
runs (``--check-against``) use the *calibration-normalized* rate
``events_per_s * calib_s``, which is stable across machines of different
speeds but catches real slowdowns of the simulation code.

Usage::

    python benchmarks/bench_wallclock.py [--quick] [--out PATH]
        [--sizes 8,50] [--skip-fig8] [--repeat N] [--profile]
        [--slope-check FRAC]
        [--check-against BASELINE.json [--tolerance 0.30]] [--tag NAME]

``--check-against`` exits non-zero if any matching workload point's
normalized events/sec regressed more than ``--tolerance`` (default 30%)
versus the baseline file's ``runs["after"]`` entry (or its flat
``workloads`` list).

``--slope-check FRAC`` gates the *shape* of the fig5 NoCrypto curve:
events/sec at the largest n must be within ``FRAC`` of the smallest n
(per-event interpreter cost flat in group size).  ``--profile`` wraps
the suite in cProfile and writes the top functions by cumulative time
next to the JSON (``OUT.profile.txt``) -- the first thing to read when
a slope check fails.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.harness import (FIG5_CONFIGS, ring_throughput,
                                view_change_latency)

FULL_NS = (8, 16, 32, 50)
QUICK_NS = (8, 16)
FIG5_LABELS = ("ByzEns+NoCrypto", "ByzEns+SymCrypto")
FIG8_KINDS = ("merge", "leave")


def calibrate(rounds=60000):
    """Seconds for a fixed pure-Python+hashlib loop; measures host speed."""
    start = time.perf_counter()
    acc = b"calib"
    total = 0
    for k in range(rounds):
        acc = hashlib.sha256(acc).digest()
        total += acc[0] ^ (k & 0xFF)
    if total < 0:  # keep the loop un-eliminable
        raise AssertionError
    return time.perf_counter() - start


def _best_of(repeat, runner):
    """Fastest of ``repeat`` runs (the one least disturbed by host noise:
    simulated work per point is deterministic, so minimum wall time is
    the cleanest estimator on shared/bursty machines)."""
    best = None
    for _ in range(repeat):
        wall, result = runner()
        if best is None or wall < best[0]:
            best = (wall, result)
    return best


def run_fig5(sizes, seed=7, repeat=1):
    points = []
    for label in FIG5_LABELS:
        for n in sizes:
            def one_run():
                start = time.perf_counter()
                result = ring_throughput(FIG5_CONFIGS[label](), n, seed=seed)
                return time.perf_counter() - start, result
            wall, result = _best_of(repeat, one_run)
            events = result["events"]
            point = {
                "workload": "fig5",
                "label": label,
                "n": n,
                "wall_s": round(wall, 4),
                "events": events,
                "events_per_s": round(events / wall, 1),
                "sim_throughput": round(result["throughput"], 1),
            }
            points.append(point)
            print("fig5 %-18s n=%-3d %7.2fs wall  %9d events  %9.0f ev/s"
                  % (label, n, wall, events, point["events_per_s"]),
                  flush=True)
    return points


def run_fig8(sizes, seed=7, repeat=1):
    points = []
    for kind in FIG8_KINDS:
        for n in sizes:
            def one_run():
                start = time.perf_counter()
                result = view_change_latency(n, kind, seed=seed)
                return time.perf_counter() - start, result
            wall, result = _best_of(repeat, one_run)
            events = result["events"]
            point = {
                "workload": "fig8",
                "label": kind,
                "n": n,
                "wall_s": round(wall, 4),
                "events": events,
                "events_per_s": round(events / wall, 1),
                "sim_seconds": (None if result["seconds"] != result["seconds"]
                                else round(result["seconds"], 6)),
            }
            points.append(point)
            print("fig8 %-18s n=%-3d %7.2fs wall  %9d events  %9.0f ev/s"
                  % (kind, n, wall, events, point["events_per_s"]),
                  flush=True)
    return points


def run_suite(quick=False, seed=7, sizes=None, skip_fig8=False, repeat=1):
    if sizes is None:
        sizes = QUICK_NS if quick else FULL_NS
    calib = min(calibrate() for _ in range(repeat))
    print("calibration loop: %.3fs" % calib, flush=True)
    points = run_fig5(sizes, seed=seed, repeat=repeat)
    if not skip_fig8:
        points += run_fig8(sizes, seed=seed, repeat=repeat)
    return {
        "quick": quick,
        "seed": seed,
        "repeat": repeat,
        "calib_s": round(calib, 4),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "workloads": points,
    }


# ----------------------------------------------------------------------
# baseline comparison (CI perf-smoke gate)
# ----------------------------------------------------------------------
def _baseline_run(doc):
    """The reference run inside a baseline JSON document."""
    if "runs" in doc:
        return doc["runs"].get("after") or next(iter(doc["runs"].values()))
    return doc


#: points faster than this (wall seconds, either side) are too noisy to
#: gate on -- a 20 ms view change flaps 2-3x between runs on shared CI
#: runners; the steady-state fig5 points carry the regression signal
MIN_GATED_WALL_S = 0.1


def check_against(current, baseline_doc, tolerance):
    """Compare normalized events/sec; returns list of regression strings."""
    baseline = _baseline_run(baseline_doc)
    base_calib = baseline.get("calib_s") or 1.0
    cur_calib = current.get("calib_s") or 1.0
    base_points = {(p["workload"], p["label"], p["n"]): p
                   for p in baseline["workloads"]}
    regressions = []
    for point in current["workloads"]:
        key = (point["workload"], point["label"], point["n"])
        ref = base_points.get(key)
        if ref is None:
            continue
        if (point["wall_s"] < MIN_GATED_WALL_S
                or ref["wall_s"] < MIN_GATED_WALL_S):
            print("perf check: skipping %s/%s n=%d (sub-%.1fs point, too "
                  "noisy to gate)" % (key[0], key[1], key[2],
                                      MIN_GATED_WALL_S))
            continue
        # events per calibration unit: host-speed-independent
        base_norm = ref["events_per_s"] * base_calib
        cur_norm = point["events_per_s"] * cur_calib
        if cur_norm < base_norm * (1.0 - tolerance):
            regressions.append(
                "%s/%s n=%d: %.0f ev/s (norm %.0f) vs baseline %.0f ev/s "
                "(norm %.0f): regressed more than %.0f%%"
                % (key[0], key[1], key[2], point["events_per_s"], cur_norm,
                   ref["events_per_s"], base_norm, tolerance * 100))
    return regressions


def check_slope(current, fraction, label="ByzEns+NoCrypto"):
    """Scalability gate: fig5 ``label`` events/sec at max n must be within
    ``fraction`` of the smallest-n point.  Returns an error string or None.
    """
    points = {p["n"]: p for p in current["workloads"]
              if p["workload"] == "fig5" and p["label"] == label}
    if len(points) < 2:
        return "slope check needs at least two fig5 %s points" % label
    lo, hi = min(points), max(points)
    base, top = points[lo]["events_per_s"], points[hi]["events_per_s"]
    slope = 1.0 - top / base if base else 1.0
    verdict = ("fig5 %s slope: n=%d %.0f ev/s -> n=%d %.0f ev/s "
               "(%.1f%% degradation, budget %.0f%%)"
               % (label, lo, base, hi, top, slope * 100, fraction * 100))
    print(verdict, flush=True)
    if slope > fraction:
        return verdict
    return None


def _write_profile(profiler, path, limit=25):
    import pstats
    with open(path, "w") as handle:
        stats = pstats.Stats(profiler, stream=handle)
        stats.sort_stats("cumulative").print_stats(limit)
    print("wrote %s" % path)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small size grid (CI perf-smoke)")
    parser.add_argument("--sizes", default=None,
                        help="comma-separated group sizes overriding the "
                             "quick/full grids, e.g. --sizes 8,50")
    parser.add_argument("--skip-fig8", action="store_true",
                        help="steady-state fig5 points only")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run each point N times and keep the fastest "
                             "(noise suppression on shared hosts)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile; write top-25 cumulative "
                             "functions to OUT.profile.txt")
    parser.add_argument("--slope-check", type=float, default=None,
                        metavar="FRAC",
                        help="fail if fig5 NoCrypto events/sec at the "
                             "largest n degrades more than FRAC vs the "
                             "smallest n (e.g. 0.15)")
    parser.add_argument("--out", default="BENCH_wallclock.json")
    parser.add_argument("--tag", default=None,
                        help="store the run under runs[TAG], merging with "
                             "an existing file instead of overwriting it")
    parser.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="fail if normalized events/sec regressed vs "
                             "this baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    sizes = None
    if args.sizes:
        sizes = tuple(int(part) for part in args.sizes.split(","))

    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    current = run_suite(quick=args.quick, seed=args.seed, sizes=sizes,
                        skip_fig8=args.skip_fig8, repeat=args.repeat)
    if args.profile:
        profiler.disable()
        _write_profile(profiler, args.out + ".profile.txt")

    if args.tag:
        doc = {"schema": 1, "runs": {}}
        if os.path.exists(args.out):
            with open(args.out) as handle:
                doc = json.load(handle)
            doc.setdefault("runs", {})
        doc["runs"][args.tag] = current
    else:
        doc = current
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)

    if args.check_against:
        with open(args.check_against) as handle:
            baseline_doc = json.load(handle)
        regressions = check_against(current, baseline_doc, args.tolerance)
        if regressions:
            for line in regressions:
                print("PERF REGRESSION: %s" % line, file=sys.stderr)
            return 1
        print("perf check ok: no point regressed more than %.0f%% "
              "(normalized)" % (args.tolerance * 100))

    if args.slope_check is not None:
        failure = check_slope(current, args.slope_check)
        if failure:
            print("PERF SLOPE FAILURE: %s" % failure, file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
