"""Localhost UDP cluster benchmark: wall-clock numbers vs sim predictions.

Usage::

    python benchmarks/bench_net_localhost.py [--nodes 5] [--casts 40]
        [--seed 1] [--repeat 3] [--quick] [--out BENCH_net.json]

Runs the same :class:`~repro.runtime.workload.NetWorkload` twice:

* on the **asyncio-UDP backend** -- every node a real OS process on
  127.0.0.1, the wire codec and monotonic clocks in the loop -- measuring
  wall-clock seconds;
* on the **deterministic simulator** -- the backend every other benchmark
  in this directory uses -- measuring simulated seconds on the
  BladeCenter topology model.

Reported per backend:

* ``throughput_msgs_per_s`` -- unique workload deliveries per second at
  each node between its first full view and script completion (median
  across nodes, then across repeats);
* ``formation_s`` -- time from node boot (singleton view) to the first
  installed full n-member view, i.e. the gossip/merge assembly latency;
* ``leave_change_s`` -- the membership layer's own measurement of the
  last view change at the survivors: the leave reconfiguration.

The two backends are NOT expected to agree in absolute terms: the
simulator models a late-90s switched LAN with calibrated CPU costs,
while the net backend pays real kernel/event-loop overhead on loopback
with the :func:`~repro.runtime.backend_asyncio.net_profile` timing
floors.  The point of committing BENCH_net.json is the *shape*: both
backends deliver every message, reconfigure in well under a second, and
drift in their ratio is visible across commits.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.runtime.driver import run_net_workload
from repro.runtime.workload import NetWorkload, run_sim_workload


def _median(values):
    values = [v for v in values if v is not None]
    return statistics.median(values) if values else None


def _result_stats(result, workload):
    """Backend-independent numbers out of one WorkloadResult."""
    rates = []
    formations = []
    changes = []
    for node, report in sorted(result.reports.items()):
        wall = report.wall
        formed, done = wall.get("formed_at"), wall.get("done_at")
        if formed is not None:
            formations.append(formed)
        if (formed is not None and done is not None and done > formed
                and wall.get("delivered")):
            rates.append(wall["delivered"] / (done - formed))
        if node != workload.leaver:
            changes.append(wall.get("last_change_duration"))
    datagrams = sum(r.counters.get("datagrams_sent", 0)
                    for r in result.reports.values())
    if result.backend == "sim":
        # the sim network counter is global, not per-node
        datagrams = max(r.counters.get("datagrams_sent", 0)
                        for r in result.reports.values())
    return {
        "ok": result.ok,
        "elapsed_s": result.elapsed,
        "violations": len(result.violations()),
        "throughput_msgs_per_s": _median(rates),
        "formation_s": _median(formations),
        "leave_change_s": _median(changes),
        "datagrams_sent": datagrams,
        "total_delivered": result.total_delivered(),
    }


def _fold(samples):
    """Median-combine repeated runs of _result_stats."""
    out = dict(samples[0])
    for key in ("elapsed_s", "throughput_msgs_per_s", "formation_s",
                "leave_change_s"):
        out[key] = _median([s[key] for s in samples])
    out["ok"] = all(s["ok"] for s in samples)
    out["violations"] = max(s["violations"] for s in samples)
    return out


def run_bench(nodes=5, casts=40, seed=1, repeat=3, cast_gap=0.01):
    workload = NetWorkload(n=nodes, casts_per_node=casts, cast_gap=cast_gap,
                           leaver=nodes - 1, deadline=12.0)
    net_samples, sim_samples = [], []
    for k in range(repeat):
        net = run_net_workload(workload, seed=seed + k,
                               config={"byzantine": True, "crypto": "sym"},
                               keep_artifacts="never")
        net_samples.append(_result_stats(net, workload))
        print("net run %d: ok=%s %.2f s wall, %s msg/s" %
              (k, net_samples[-1]["ok"], net_samples[-1]["elapsed_s"],
               "%.0f" % net_samples[-1]["throughput_msgs_per_s"]
               if net_samples[-1]["throughput_msgs_per_s"] else "?"),
              flush=True)
        sim = run_sim_workload(workload, seed=seed + k)
        sim_samples.append(_result_stats(sim, workload))
        print("sim run %d: ok=%s %.2f s simulated" %
              (k, sim_samples[-1]["ok"], sim_samples[-1]["elapsed_s"]),
              flush=True)
    net_stats, sim_stats = _fold(net_samples), _fold(sim_samples)
    ratio = {}
    for key in ("throughput_msgs_per_s", "formation_s", "leave_change_s"):
        a, b = net_stats.get(key), sim_stats.get(key)
        ratio[key] = (a / b) if a and b else None
    return {
        "workload": workload.to_jsonable(),
        "repeat": repeat,
        "seed": seed,
        "net": net_stats,
        "sim": sim_stats,
        "net_over_sim": ratio,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--casts", type=int, default=40,
                        help="multicasts per node once the view forms")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="one repeat, fewer casts (CI smoke)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON result here")
    args = parser.parse_args(argv)
    repeat = 1 if args.quick else args.repeat
    casts = min(args.casts, 10) if args.quick else args.casts
    result = run_bench(nodes=args.nodes, casts=casts, seed=args.seed,
                       repeat=repeat)
    net, sim = result["net"], result["sim"]
    print("\n%-24s %12s %12s" % ("", "net (wall)", "sim (model)"))
    for key in ("throughput_msgs_per_s", "formation_s", "leave_change_s"):
        print("%-24s %12s %12s"
              % (key,
                 "%.3f" % net[key] if net[key] is not None else "-",
                 "%.3f" % sim[key] if sim[key] is not None else "-"))
    print("%-24s %12s %12s" % ("ok / violations",
                               "%s/%d" % (net["ok"], net["violations"]),
                               "%s/%d" % (sim["ok"], sim["violations"])))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=1, sort_keys=True)
        print("\nwrote %s" % args.out)
    if not (net["ok"] and sim["ok"]
            and net["violations"] == 0 and sim["violations"] == 0):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
