"""Localhost UDP cluster benchmark: wall-clock numbers vs sim predictions.

Usage::

    python benchmarks/bench_net_localhost.py [--nodes 5] [--casts 40]
        [--seed 1] [--repeat 3] [--quick] [--out BENCH_net.json]
        [--saturate] [--no-before]
        [--check-against BENCH_net.json [--tolerance 0.30]]

Two workload families:

**Rate-limited** (the default): the same
:class:`~repro.runtime.workload.NetWorkload` runs twice --

* on the **asyncio-UDP backend** -- every node a real OS process on
  127.0.0.1, the wire codec and monotonic clocks in the loop -- measuring
  wall-clock seconds;
* on the **deterministic simulator** -- the backend every other benchmark
  in this directory uses -- measuring simulated seconds on the
  BladeCenter topology model.

Reported per backend: ``throughput_msgs_per_s`` (unique workload
deliveries per second at each node between its first full view and
script completion; median across nodes, then repeats), ``formation_s``
(boot to first full view) and ``leave_change_s`` (the leave
reconfiguration).  The two backends are NOT expected to agree in
absolute terms; the point of committing BENCH_net.json is the *shape*.

**Saturation** (``--saturate``): ``cast_gap=0`` -- every node fires its
whole cast burst the moment the view forms, so the wire path, not the
workload timer, is the bottleneck.  A grid over cluster size and payload
size measures the net backend only and reports the wire-path figures of
merit: ``msgs_per_s``, ``datagrams_per_s``, ``frames_per_datagram`` (the
coalescer's amortization factor) and ``bytes_per_msg`` (wire overhead).
The headline point also runs with ``wire_coalesce`` off -- the
pre-coalescer wire path -- and the before/after improvement is recorded
alongside (see docs/PERFORMANCE.md, "The wire path").

A saturating burst can overload the failure detector (real scheduling
stalls read as muteness), churning a view mid-burst; the workload then
re-casts and the history checker reads the resulting duplicates as
violations.  That is overload behaviour, not a wire-path defect -- the
saturation family therefore *reports* violation counts but gates only
on node success; correctness under load is the conformance tests' and
the rate-limited family's job.

``--check-against`` (CI net-smoke gate): compares this run's throughput
numbers against a committed baseline, normalized by the same pure-Python
calibration loop the perf-smoke gate uses (``events_per_s * calib_s``
style), so the check is host-speed-independent.  Points whose measure
window is under 0.1 wall seconds are reported but not gated -- they flap
on shared CI runners (the perf-smoke tolerance rules, mirrored).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.bench_wallclock import MIN_GATED_WALL_S, calibrate
from repro.runtime.driver import run_net_workload
from repro.runtime.workload import NetWorkload, run_sim_workload

#: saturation grid: (nodes, payload_bytes, casts_per_node)
SATURATION_GRID = (
    (3, 16, 150),
    (5, 16, 120),
    (5, 512, 100),
    (5, 2048, 60),
    (7, 16, 80),
)
#: quick mode runs only the headline point, with the SAME burst size as
#: the full grid so the --check-against comparison is like-for-like
QUICK_SATURATION_GRID = ((5, 16, 120),)

#: the before/after comparison point: 5-node loopback, small casts
HEADLINE = (5, 16)


def _median(values):
    values = [v for v in values if v is not None]
    return statistics.median(values) if values else None


def _result_stats(result, workload):
    """Backend-independent numbers out of one WorkloadResult."""
    rates = []
    formations = []
    changes = []
    windows = []
    for node, report in sorted(result.reports.items()):
        wall = report.wall
        formed, done = wall.get("formed_at"), wall.get("done_at")
        if formed is not None:
            formations.append(formed)
        if (formed is not None and done is not None and done > formed
                and wall.get("delivered")):
            rates.append(wall["delivered"] / (done - formed))
            windows.append(done - formed)
        if node != workload.leaver:
            changes.append(wall.get("last_change_duration"))
    counters = [r.counters for r in result.reports.values()]
    datagrams = sum(c.get("datagrams_sent", 0) for c in counters)
    if result.backend == "sim":
        # the sim network counter is global, not per-node
        datagrams = max(c.get("datagrams_sent", 0) for c in counters)
    stats = {
        "ok": result.ok,
        "elapsed_s": result.elapsed,
        "violations": len(result.violations()),
        "throughput_msgs_per_s": _median(rates),
        "formation_s": _median(formations),
        "leave_change_s": _median(changes),
        "datagrams_sent": datagrams,
        "total_delivered": result.total_delivered(),
        "measure_s": _median(windows),
    }
    if result.backend == "net":
        stats["frames_sent"] = sum(c.get("frames_sent", 0) for c in counters)
        stats["bytes_out"] = sum(c.get("bytes_out", 0) for c in counters)
        stats["encode_cache_hits"] = sum(c.get("encode_cache_hits", 0)
                                         for c in counters)
        stats["oversize_drops"] = sum(c.get("oversize_drops", 0)
                                      for c in counters)
    return stats


def _fold(samples):
    """Median-combine repeated runs of _result_stats."""
    out = dict(samples[0])
    for key in ("elapsed_s", "throughput_msgs_per_s", "formation_s",
                "leave_change_s", "measure_s"):
        if key in out:
            out[key] = _median([s.get(key) for s in samples])
    for key in ("datagrams_sent", "frames_sent", "bytes_out",
                "encode_cache_hits", "total_delivered"):
        if key in out:
            out[key] = int(_median([s.get(key) for s in samples]))
    out["ok"] = all(s["ok"] for s in samples)
    out["violations"] = max(s["violations"] for s in samples)
    return out


# ----------------------------------------------------------------------
# rate-limited family (net vs sim)
# ----------------------------------------------------------------------
def run_bench(nodes=5, casts=40, seed=1, repeat=3, cast_gap=0.01):
    workload = NetWorkload(n=nodes, casts_per_node=casts, cast_gap=cast_gap,
                           leaver=nodes - 1, deadline=12.0)
    net_samples, sim_samples = [], []
    for k in range(repeat):
        net = run_net_workload(workload, seed=seed + k,
                               config={"byzantine": True, "crypto": "sym"},
                               keep_artifacts="never")
        net_samples.append(_result_stats(net, workload))
        print("net run %d: ok=%s %.2f s wall, %s msg/s" %
              (k, net_samples[-1]["ok"], net_samples[-1]["elapsed_s"],
               "%.0f" % net_samples[-1]["throughput_msgs_per_s"]
               if net_samples[-1]["throughput_msgs_per_s"] else "?"),
              flush=True)
        sim = run_sim_workload(workload, seed=seed + k)
        sim_samples.append(_result_stats(sim, workload))
        print("sim run %d: ok=%s %.2f s simulated" %
              (k, sim_samples[-1]["ok"], sim_samples[-1]["elapsed_s"]),
              flush=True)
    net_stats, sim_stats = _fold(net_samples), _fold(sim_samples)
    ratio = {}
    for key in ("throughput_msgs_per_s", "formation_s", "leave_change_s"):
        a, b = net_stats.get(key), sim_stats.get(key)
        ratio[key] = (a / b) if a and b else None
    return {
        "workload": workload.to_jsonable(),
        "repeat": repeat,
        "seed": seed,
        "net": net_stats,
        "sim": sim_stats,
        "net_over_sim": ratio,
    }


# ----------------------------------------------------------------------
# saturation family (net only, cast_gap=0)
# ----------------------------------------------------------------------
def run_saturation_point(nodes, payload, casts, seed=1, repeat=2,
                         coalesce=True):
    """One saturation point: the whole burst at view formation."""
    workload = NetWorkload(n=nodes, casts_per_node=casts, cast_gap=0.0,
                           payload_bytes=payload, leaver=None,
                           deadline=25.0, linger=0.3)
    config = {"byzantine": True, "crypto": "sym", "wire_coalesce": coalesce}
    samples = []
    for k in range(repeat):
        net = run_net_workload(workload, seed=seed + k, config=config,
                               keep_artifacts="never")
        samples.append(_result_stats(net, workload))
    stats = _fold(samples)
    point = {
        "nodes": nodes,
        "payload_bytes": payload,
        "casts_per_node": casts,
        "coalesce": coalesce,
        "ok": stats["ok"],
        "violations": stats["violations"],
        "msgs_per_s": stats["throughput_msgs_per_s"],
        "measure_s": stats["measure_s"],
        "datagrams_sent": stats["datagrams_sent"],
        "frames_sent": stats["frames_sent"],
        "bytes_out": stats["bytes_out"],
        "encode_cache_hits": stats["encode_cache_hits"],
        "total_delivered": stats["total_delivered"],
    }
    if stats["measure_s"]:
        point["datagrams_per_s"] = stats["datagrams_sent"] / stats["measure_s"]
    if stats["total_delivered"]:
        point["bytes_per_msg"] = stats["bytes_out"] / stats["total_delivered"]
    if stats["datagrams_sent"]:
        point["frames_per_datagram"] = (stats["frames_sent"]
                                        / stats["datagrams_sent"])
    print("saturate n=%d payload=%d coalesce=%s: ok=%s %s msg/s, "
          "%d datagrams (%.1f frames/datagram)" %
          (nodes, payload, coalesce, point["ok"],
           "%.0f" % point["msgs_per_s"] if point["msgs_per_s"] else "?",
           point["datagrams_sent"], point.get("frames_per_datagram", 0.0)),
          flush=True)
    return point


def run_saturation(grid, seed=1, repeat=2, before=True):
    """The saturation suite, with the headline before/after comparison."""
    points = [run_saturation_point(n, payload, casts, seed=seed,
                                   repeat=repeat)
              for n, payload, casts in grid]
    suite = {"grid": [list(g) for g in grid], "repeat": repeat,
             "points": points}
    headline = next((p for p in points
                     if (p["nodes"], p["payload_bytes"]) == HEADLINE), None)
    if before and headline is not None:
        casts = headline["casts_per_node"]
        off = run_saturation_point(HEADLINE[0], HEADLINE[1], casts,
                                   seed=seed, repeat=repeat, coalesce=False)
        suite["before_headline"] = off
        if off["msgs_per_s"] and headline["msgs_per_s"]:
            suite["improvement"] = {
                "msgs_per_s_x": headline["msgs_per_s"] / off["msgs_per_s"],
                "datagram_reduction": 1.0 - (headline["datagrams_sent"]
                                             / off["datagrams_sent"]),
            }
    return suite


# ----------------------------------------------------------------------
# baseline comparison (CI net-smoke gate; perf-smoke rules mirrored)
# ----------------------------------------------------------------------
def _gatable_points(doc):
    """``{key: (rate, measure_s)}`` throughput points of one result doc."""
    points = {}
    rate_limited = doc.get("rate_limited")
    if rate_limited:
        net = rate_limited["net"]
        if net.get("throughput_msgs_per_s"):
            points["rate_limited"] = (net["throughput_msgs_per_s"],
                                      net.get("measure_s") or 0.0)
    saturation = doc.get("saturation")
    if saturation:
        for p in saturation["points"]:
            if p.get("msgs_per_s"):
                key = "saturate:n=%d:payload=%d" % (p["nodes"],
                                                    p["payload_bytes"])
                points[key] = (p["msgs_per_s"], p.get("measure_s") or 0.0)
    return points


def check_against(current, baseline_doc, tolerance):
    """Compare normalized msgs/s; returns a list of regression strings.

    Normalization: ``rate * calib_s`` on each side, the same
    host-speed-independent comparison the perf-smoke gate uses.  Points
    with a sub-``MIN_GATED_WALL_S`` measure window on either side are
    skipped (too noisy to gate).  Baseline points absent from the
    current run (or vice versa) are ignored, so grid changes do not
    break CI -- refresh the baseline alongside.
    """
    if baseline_doc.get("schema", 1) < 2:
        print("net check: baseline has no schema-2 sections; nothing gated")
        return []
    base_calib = baseline_doc.get("calib_s") or 1.0
    cur_calib = current.get("calib_s") or 1.0
    base_points = _gatable_points(baseline_doc)
    regressions = []
    for key, (rate, measure_s) in sorted(_gatable_points(current).items()):
        ref = base_points.get(key)
        if ref is None:
            continue
        base_rate, base_measure_s = ref
        if measure_s < MIN_GATED_WALL_S or base_measure_s < MIN_GATED_WALL_S:
            print("net check: skipping %s (sub-%.1fs measure window, too "
                  "noisy to gate)" % (key, MIN_GATED_WALL_S))
            continue
        cur_norm = rate * cur_calib
        base_norm = base_rate * base_calib
        if cur_norm < base_norm * (1.0 - tolerance):
            regressions.append(
                "%s: %.0f msg/s (norm %.1f) vs baseline %.0f msg/s "
                "(norm %.1f): regressed more than %.0f%%"
                % (key, rate, cur_norm, base_rate, base_norm,
                   tolerance * 100))
        else:
            print("net check: %s ok (%.0f msg/s, norm %.1f vs %.1f)"
                  % (key, rate, cur_norm, base_norm))
    return regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--casts", type=int, default=40,
                        help="multicasts per node once the view forms")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="one repeat, fewer casts / headline-only "
                             "saturation grid (CI smoke)")
    parser.add_argument("--saturate", action="store_true",
                        help="run the cast_gap=0 saturation suite instead "
                             "of the rate-limited net-vs-sim comparison")
    parser.add_argument("--no-before", action="store_true",
                        help="skip the coalescing-off before run of the "
                             "saturation headline point")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON result here")
    parser.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="fail if normalized msgs/s regressed vs this "
                             "baseline JSON (schema 2)")
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args(argv)
    repeat = 1 if args.quick else args.repeat

    calib = calibrate()
    print("calibration loop: %.3fs" % calib, flush=True)
    result = {"schema": 2, "seed": args.seed,
              "python": "%d.%d.%d" % sys.version_info[:3],
              "calib_s": round(calib, 4)}
    ok = True
    if args.saturate:
        grid = QUICK_SATURATION_GRID if args.quick else SATURATION_GRID
        suite = run_saturation(grid, seed=args.seed,
                               repeat=1 if args.quick else 2,
                               before=not args.no_before)
        result["saturation"] = suite
        print("\n%-28s %10s %12s %10s %10s %6s"
              % ("point", "msg/s", "datagrams/s", "frames/dg", "B/msg",
                 "viol"))
        rows = list(suite["points"])
        if "before_headline" in suite:
            rows.append(suite["before_headline"])
        for p in rows:
            name = "n=%d payload=%dB%s" % (
                p["nodes"], p["payload_bytes"],
                "" if p["coalesce"] else " (no coalesce)")
            print("%-28s %10s %12s %10s %10s %6d"
                  % (name,
                     "%.0f" % p["msgs_per_s"] if p["msgs_per_s"] else "-",
                     "%.0f" % p["datagrams_per_s"]
                     if p.get("datagrams_per_s") else "-",
                     "%.1f" % p.get("frames_per_datagram", 0.0),
                     "%.0f" % p.get("bytes_per_msg", 0.0),
                     p["violations"]))
            # gate on node success only: overload churn makes the
            # violation count flaky by design (see module docstring)
            ok = ok and p["ok"]
        if "improvement" in suite:
            imp = suite["improvement"]
            print("\nheadline n=%d payload=%dB vs coalescing off: "
                  "%.2fx msg/s, %.0f%% fewer datagrams"
                  % (HEADLINE[0], HEADLINE[1], imp["msgs_per_s_x"],
                     imp["datagram_reduction"] * 100))
    else:
        casts = min(args.casts, 10) if args.quick else args.casts
        rate_limited = run_bench(nodes=args.nodes, casts=casts,
                                 seed=args.seed, repeat=repeat)
        result["rate_limited"] = rate_limited
        net, sim = rate_limited["net"], rate_limited["sim"]
        print("\n%-24s %12s %12s" % ("", "net (wall)", "sim (model)"))
        for key in ("throughput_msgs_per_s", "formation_s", "leave_change_s"):
            print("%-24s %12s %12s"
                  % (key,
                     "%.3f" % net[key] if net[key] is not None else "-",
                     "%.3f" % sim[key] if sim[key] is not None else "-"))
        print("%-24s %12s %12s" % ("ok / violations",
                                   "%s/%d" % (net["ok"], net["violations"]),
                                   "%s/%d" % (sim["ok"], sim["violations"])))
        ok = (net["ok"] and sim["ok"]
              and net["violations"] == 0 and sim["violations"] == 0)

    if args.check_against:
        with open(args.check_against) as handle:
            baseline = json.load(handle)
        regressions = check_against(result, baseline, args.tolerance)
        for line in regressions:
            print("NET PERF REGRESSION: %s" % line)
        if regressions:
            ok = False
        elif not _gatable_points(result):
            print("net check: no gatable points in this run")

    if args.out:
        # merge: a saturation-only or rate-limited-only run refreshes its
        # own section of an existing schema-2 baseline
        doc = result
        if os.path.exists(args.out):
            with open(args.out) as handle:
                try:
                    existing = json.load(handle)
                except ValueError:
                    existing = {}
            if existing.get("schema") == 2:
                existing.update(result)
                doc = existing
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)
        print("\nwrote %s" % args.out)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
