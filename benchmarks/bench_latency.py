"""Failure-free ordering latency: the optimistic fast path vs classic.

Measures cast->deliver latency (p50/p99, *simulated* milliseconds) and
ordering decides/s for the totally-ordered SymCrypto stack with the
2-step fast path on vs off, at n = 8/16/32, under the open-loop
moderate-load workload of ``harness.ordering_latency`` -- the regime the
fast path targets: enough concurrent casts that the classic (tick-gated,
one-instance-at-a-time) path queues, few enough that the pipelined fast
path absorbs the rate.  A fig6-style closed-loop ring sweep rides along
so the classic latency ladder stays tracked by the same artifact.

Simulated latencies are deterministic per (seed, n, interval) and
host-independent; wall-clock events/s is also recorded per point and
compared with the same calibration-normalized ``--check-against``
machinery as ``bench_wallclock.py`` (sub-0.1 s wall points ungated).

Usage::

    python benchmarks/bench_latency.py [--quick] [--out PATH]
        [--repeat N] [--speedup-check RATIO]
        [--check-against BASELINE.json [--tolerance 0.30]] [--tag NAME]

``--speedup-check RATIO`` exits non-zero unless fast-path-on p50 beats
fast-path-off by at least RATIO at every measured n >= 16 (the headline
acceptance gate uses 1.7).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.bench_wallclock import _best_of, calibrate, check_against
from benchmarks.harness import FIG6_CONFIGS, ordering_latency, ring_latency
from repro import StackConfig

FULL_NS = (8, 16, 32)
QUICK_NS = (8, 16)
#: the ring sweep reuses the fig6 lines at a reduced size grid
RING_NS = (8, 16)

FASTPATH_CONFIGS = {
    "SymCrypto+Total": lambda: StackConfig.byz(crypto="sym",
                                               total_order=True),
    "SymCrypto+Total+Fast": lambda: StackConfig.byz(
        crypto="sym", total_order=True, ordering_fast_path=True),
}


def run_fastpath(sizes, seed=7, repeat=1):
    points = []
    for label, build in FASTPATH_CONFIGS.items():
        for n in sizes:
            def one_run():
                start = time.perf_counter()
                result = ordering_latency(build(), n, seed=seed)
                return time.perf_counter() - start, result
            wall, result = _best_of(repeat, one_run)
            point = {
                "workload": "fastpath",
                "label": label,
                "n": n,
                "wall_s": round(wall, 4),
                "events": result["events"],
                "events_per_s": round(result["events"] / wall, 1),
                "p50_ms": round(result["p50_ms"], 4),
                "p99_ms": round(result["p99_ms"], 4),
                "mean_ms": round(result["mean_ms"], 4),
                "delivered": result["delivered"],
                "decides_per_s": round(result["decides_per_s"], 1),
                "fast_decides": result["fast_decides"],
                "fast_fallbacks": result["fast_fallbacks"],
            }
            points.append(point)
            print("fastpath %-22s n=%-3d p50 %7.3f ms  p99 %7.3f ms  "
                  "%6.0f decides/s  %4d delivered  (%.2fs wall)"
                  % (label, n, point["p50_ms"], point["p99_ms"],
                     point["decides_per_s"], point["delivered"], wall),
                  flush=True)
    return points


def run_ring(sizes, seed=7, repeat=1):
    points = []
    for label in sorted(FIG6_CONFIGS):
        for n in sizes:
            def one_run():
                start = time.perf_counter()
                result = ring_latency(FIG6_CONFIGS[label](), n, seed=seed)
                return time.perf_counter() - start, result
            wall, result = _best_of(repeat, one_run)
            point = {
                "workload": "fig6",
                "label": label,
                "n": n,
                "wall_s": round(wall, 4),
                "events": result["events"],
                "events_per_s": round(result["events"] / wall, 1),
                "latency_ms": round(result["latency_ms"], 4),
                "p99_ms": round(result["p99_ms"], 4),
            }
            points.append(point)
            print("fig6     %-22s n=%-3d mean %6.3f ms  p99 %7.3f ms"
                  % (label, n, point["latency_ms"], point["p99_ms"]),
                  flush=True)
    return points


def run_suite(quick=False, seed=7, repeat=1):
    sizes = QUICK_NS if quick else FULL_NS
    calib = min(calibrate() for _ in range(repeat))
    print("calibration loop: %.3fs" % calib, flush=True)
    points = run_fastpath(sizes, seed=seed, repeat=repeat)
    points += run_ring(tuple(n for n in RING_NS if n in sizes) or RING_NS,
                       seed=seed, repeat=repeat)
    return {
        "quick": quick,
        "seed": seed,
        "repeat": repeat,
        "calib_s": round(calib, 4),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "workloads": points,
    }


def check_speedup(current, ratio, min_n=16):
    """The headline gate: fast-on p50 must beat fast-off by ``ratio``
    at every measured n >= ``min_n``.  Returns failure strings."""
    p50 = {(p["label"], p["n"]): p["p50_ms"]
           for p in current["workloads"] if p["workload"] == "fastpath"}
    failures = []
    checked = 0
    for (label, n), off_ms in sorted(p50.items()):
        if label != "SymCrypto+Total" or n < min_n:
            continue
        on_ms = p50.get(("SymCrypto+Total+Fast", n))
        if on_ms is None:
            continue
        checked += 1
        speedup = off_ms / on_ms if on_ms else float("inf")
        print("speedup n=%-3d off %7.3f ms / on %7.3f ms = %.2fx "
              "(need %.2fx)" % (n, off_ms, on_ms, speedup, ratio),
              flush=True)
        if speedup < ratio:
            failures.append("n=%d: %.2fx < required %.2fx"
                            % (n, speedup, ratio))
    if not checked:
        failures.append("no fastpath point pairs at n >= %d" % min_n)
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="n=8,16 only (CI latency-smoke)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run each point N times, keep the fastest "
                             "wall time (simulated results are identical)")
    parser.add_argument("--speedup-check", type=float, default=None,
                        metavar="RATIO",
                        help="fail unless fast-on p50 beats fast-off by "
                             "RATIO at every measured n >= 16")
    parser.add_argument("--out", default="BENCH_latency.json")
    parser.add_argument("--tag", default=None,
                        help="store the run under runs[TAG], merging with "
                             "an existing file instead of overwriting it")
    parser.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="fail if normalized events/sec regressed vs "
                             "this baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    current = run_suite(quick=args.quick, seed=args.seed, repeat=args.repeat)

    if args.tag:
        doc = {"schema": 1, "runs": {}}
        if os.path.exists(args.out):
            with open(args.out) as handle:
                doc = json.load(handle)
            doc.setdefault("runs", {})
        doc["runs"][args.tag] = current
    else:
        doc = current
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)

    if args.check_against:
        with open(args.check_against) as handle:
            baseline_doc = json.load(handle)
        regressions = check_against(current, baseline_doc, args.tolerance)
        if regressions:
            for line in regressions:
                print("PERF REGRESSION: %s" % line, file=sys.stderr)
            return 1
        print("perf check ok: no point regressed more than %.0f%% "
              "(normalized)" % (args.tolerance * 100))

    if args.speedup_check is not None:
        failures = check_speedup(current, args.speedup_check)
        if failures:
            for line in failures:
                print("FAST-PATH SPEEDUP FAILURE: %s" % line,
                      file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
