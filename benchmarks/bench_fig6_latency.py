"""Figure 6: average latency of 1-byte messages vs group size.

Paper lines: JazzEns, ByzEns+NoCrypto, ByzEns+SymCrypto,
ByzEns+NoCrypto+Total (PubCrypto dropped -- orders of magnitude higher).

Expected shape: single-digit milliseconds growing mildly with n;
NoCrypto slightly above benign; SymCrypto adds per-receiver MAC cost
(grows with n); Total adds a consensus round on top.

The same ring sweep is recorded in the committed ``BENCH_latency.json``
artifact by ``benchmarks/bench_latency.py`` (which also measures the
ordering fast path) and gated in CI through ``run_all.py --latency`` /
``--check-against`` with the calibration-normalized machinery shared
with ``bench_wallclock.py``.
"""

import pytest

from benchmarks.harness import FIG6_CONFIGS, QUICK_SIZES, ring_latency


@pytest.mark.parametrize("n", QUICK_SIZES)
@pytest.mark.parametrize("label", sorted(FIG6_CONFIGS))
def test_fig6_latency(benchmark, label, n):
    config = FIG6_CONFIGS[label]()
    result = benchmark.pedantic(
        lambda: ring_latency(config, n), rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["rounds"] > 3
    assert 0 < result["latency_ms"] < 50


def test_fig6_shape_millisecond_scale_at_8():
    """The paper's latencies at n=8 sit near 1 ms."""
    base = ring_latency(FIG6_CONFIGS["JazzEns"](), 8)
    assert 0.05 < base["latency_ms"] < 5.0


def test_fig6_shape_ordering_ladder():
    """benign <= hardened <= sym-crypto <= total ordering."""
    lat = {label: ring_latency(build(), 16)["latency_ms"]
           for label, build in FIG6_CONFIGS.items()}
    assert lat["JazzEns"] <= lat["ByzEns+NoCrypto"] * 1.15
    assert lat["ByzEns+NoCrypto"] < lat["ByzEns+SymCrypto"] * 1.15
    assert lat["ByzEns+SymCrypto"] < lat["ByzEns+NoCrypto+Total"] * 1.5


def test_fig6_shape_latency_grows_with_group_size():
    small = ring_latency(FIG6_CONFIGS["ByzEns+SymCrypto"](), 8)
    large = ring_latency(FIG6_CONFIGS["ByzEns+SymCrypto"](), 40)
    assert large["latency_ms"] > small["latency_ms"]
