"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of its *arguments*:

1. **Fuzzy flow control** (section 3.1): with a slow/mute member, the
   fuzzy window keeps the group's throughput up; classic all-ack flow
   control stalls behind the laggard.
2. **2-step UB vs Bracha** (section 3.4.3): the paper's protocol buys one
   fewer communication step for the new-view dissemination at the price
   of lower resilience; measure the view-change latency of both.
3. **Consensus batching** (section 3.5): the 1-round amortization claim --
   throughput of total ordering with large vs degenerate batch caps.
"""

import pytest

from benchmarks.harness import ring_throughput, view_change_latency
from repro import Group, StackConfig
from repro.apps.ring import RingDemo
from repro.byzantine.behaviors import MuteNode


def throughput_with_laggard(fuzzy_flow, n=8, seed=21):
    """Aggregate throughput while one member silently stops acking."""
    config = StackConfig.byz(fuzzy_flow=fuzzy_flow, flow_window=32,
                             # keep the laggard IN the view for the whole
                             # window: detection thresholds way up
                             mute_suspect_threshold=1e9,
                             verbose_suspect_threshold=1e9)
    behaviors = {n - 1: MuteNode(mute_at=0.02)}
    group = Group.bootstrap(n, config=config, seed=seed, behaviors=behaviors)
    ring = RingDemo(group, burst=8)
    # the ring app itself waits for everyone; pump an open-loop feed instead
    for node, endpoint in group.endpoints.items():
        endpoint.record_events = False
    state = {"sent": 0, "delivered": 0}
    group.endpoints[1].on_cast = (
        lambda ev: state.__setitem__("delivered", state["delivered"] + 1))

    def pump():
        if state["sent"] < 3000 and not group.processes[0].stopped:
            group.endpoints[0].cast(("q", state["sent"]), size=16)
            state["sent"] += 1
            group.sim.schedule(0.0002, pump)

    pump()
    group.run(0.6)
    delivered = state["delivered"]
    group.stop()
    return delivered / 0.6


def test_ablation_fuzzy_flow_keeps_throughput(benchmark):
    with_fuzzy = throughput_with_laggard(fuzzy_flow=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    without = throughput_with_laggard(fuzzy_flow=False)
    benchmark.extra_info.update({
        "fuzzy_flow_msgs_per_s": with_fuzzy,
        "classic_flow_msgs_per_s": without,
    })
    # classic flow control stalls at the window once the laggard stops
    # acking; the fuzzy window sails past it
    assert with_fuzzy > 3 * without, (with_fuzzy, without)


def test_ablation_ub_protocol_resilience_tradeoff(benchmark):
    result = {}
    for protocol in ("twostep", "bracha"):
        config = StackConfig.byz(uniform_protocol=protocol)
        sample = view_change_latency(16, "leave", config=config)
        assert sample["converged"], protocol
        result[protocol] = sample["seconds"]
        result[protocol + "_f_at_16"] = config.resilience(16)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    # the trade: 2-step is *never slower* by more than noise, but Bracha
    # tolerates more Byzantine members at the same n
    assert result["twostep_f_at_16"] <= result["bracha_f_at_16"]
    assert result["twostep"] <= result["bracha"] * 1.5


def test_ablation_consensus_batching_amortization(benchmark):
    """Large batches amortize consensus to ~1 round/message (paper 3.5)."""
    big = ring_throughput(StackConfig.byz(total_order=True,
                                          order_batch_max=1024), 8, seed=23)
    tiny = ring_throughput(StackConfig.byz(total_order=True,
                                           order_batch_max=1), 8, seed=23)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "batch_1024_msgs_per_s": big["throughput"],
        "batch_1_msgs_per_s": tiny["throughput"],
    })
    assert big["throughput"] > 2 * tiny["throughput"], (big, tiny)


def test_ablation_packing_boost(benchmark):
    """The packing optimization the paper left out (footnote 3): predicted
    'at least a factor of 10' for small messages; measure the factor."""
    plain = ring_throughput(StackConfig.byz(), 8, seed=29)
    packed = ring_throughput(StackConfig.byz(packing=True), 8, seed=29,
                             burst=32)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    factor = packed["throughput"] / plain["throughput"]
    benchmark.extra_info.update({
        "plain_msgs_per_s": plain["throughput"],
        "packed_msgs_per_s": packed["throughput"],
        "boost_factor": factor,
    })
    assert factor > 3.0, factor


@pytest.mark.parametrize("entries", (10, 1000))
def test_ablation_state_transfer_catchup(benchmark, entries):
    """Joiner catch-up: Byzantine-vouched snapshot transfer vs state size."""
    from repro.apps.rsm import Replica

    def run():
        config = StackConfig.byz(total_order=True)
        group = Group.bootstrap(6, config=config, seed=31)
        replicas = {n: Replica(group.endpoints[n]) for n in group.endpoints}
        # pre-seed an identical committed state at every replica (as if the
        # commands had been atomically delivered long ago)
        for replica in replicas.values():
            for k in range(entries):
                replica.machine.apply(0, ("set", "k%d" % k, k))
        group.run(0.1)
        newcomer = Replica(group.add_node(6))
        joined_at = None
        group.run_until(lambda: all(p.view.n == 7
                                    for p in group.processes.values()),
                        timeout=10.0)
        join_time = group.sim.now
        ok = group.run_until(
            lambda: newcomer.machine.data == replicas[0].machine.data,
            timeout=10.0)
        catchup = group.sim.now - join_time
        group.stop()
        return {"entries": entries, "caught_up": ok,
                "catchup_seconds": catchup}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["caught_up"]
    assert result["catchup_seconds"] < 1.0
